#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nti::sim {
namespace {

using namespace nti::literals;

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::from_ps(300), [&] { order.push_back(3); });
  e.schedule_at(SimTime::from_ps(100), [&] { order.push_back(1); });
  e.schedule_at(SimTime::from_ps(200), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, FifoAmongEqualTimes) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(SimTime::from_ps(50), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NowMatchesFiringTime) {
  Engine e;
  SimTime seen;
  e.schedule_at(SimTime::from_ps(12345), [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, SimTime::from_ps(12345));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  SimTime seen;
  e.schedule_at(SimTime::from_ps(1000), [&] {
    e.schedule_in(500_ps, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, SimTime::from_ps(1500));
}

TEST(Engine, PastSchedulesClampToNow) {
  Engine e;
  e.run_until(SimTime::from_ps(1000));
  SimTime seen;
  e.schedule_at(SimTime::from_ps(10), [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, SimTime::from_ps(1000));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  EventHandle h = e.schedule_at(SimTime::from_ps(100), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine e;
  int runs = 0;
  EventHandle h = e.schedule_at(SimTime::from_ps(100), [&] { ++runs; });
  e.run();
  h.cancel();  // must not crash or double-count
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.pending());
}

TEST(Engine, RunUntilAdvancesTimeEvenWhenEmpty) {
  Engine e;
  e.run_until(SimTime::from_ps(777));
  EXPECT_EQ(e.now(), SimTime::from_ps(777));
}

TEST(Engine, RunUntilDoesNotExecuteLaterEvents) {
  Engine e;
  bool ran = false;
  e.schedule_at(SimTime::from_ps(2000), [&] { ran = true; });
  e.run_until(SimTime::from_ps(1000));
  EXPECT_FALSE(ran);
  e.run_until(SimTime::from_ps(2000));
  EXPECT_TRUE(ran);
}

TEST(Engine, ReentrantSchedulingFromHandler) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) e.schedule_in(10_ps, chain);
  };
  e.schedule_at(SimTime::from_ps(0), chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), SimTime::from_ps(40));
}

// Regression: run_until's stop guard inspected the raw queue head.  A
// cancelled event with when <= limit at the head let step() run, and step()
// -- after discarding the tombstone -- executed the next *live* event even
// when its deadline was past the limit.
TEST(Engine, RunUntilRespectsLimitWhenCancelledEventHeadsQueue) {
  Engine e;
  bool late_ran = false;
  EventHandle a = e.schedule_at(SimTime::from_ps(100), [] {});
  e.schedule_at(SimTime::from_ps(200), [&] { late_ran = true; });
  a.cancel();
  e.run_until(SimTime::from_ps(150));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(e.now(), SimTime::from_ps(150));
  e.run_until(SimTime::from_ps(200));
  EXPECT_TRUE(late_ran);
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, MetricsRegisterAndTrack) {
  Engine e;
  obs::MetricsRegistry reg;
  e.register_metrics(reg, "sim.");
  e.schedule_at(SimTime::from_ps(1), [] {});
  e.schedule_at(SimTime::from_ps(2), [] {});
  EXPECT_EQ(reg.value("sim.queue_high_water"), 2.0);
  e.run();
  EXPECT_EQ(reg.value("sim.events_executed"), 2.0);
  EXPECT_EQ(reg.value("sim.events_pending"), 0.0);
}

TEST(Engine, TraceRecordsFiredEvents) {
  Engine e;
  obs::TraceRing ring(8);
  e.set_trace(&ring);
  e.schedule_at(SimTime::from_ps(5), [] {});
  e.run();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0).type, obs::TraceType::kEventFired);
  EXPECT_EQ(ring.at(0).t.count_ps(), 5);
}

TEST(Engine, CountsExecutedAndPending) {
  Engine e;
  e.schedule_at(SimTime::from_ps(1), [] {});
  e.schedule_at(SimTime::from_ps(2), [] {});
  EXPECT_EQ(e.events_pending(), 2u);
  e.run();
  EXPECT_EQ(e.events_executed(), 2u);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, FrontBandFiresBeforeNormalAtSameTime) {
  Engine e;
  std::vector<int> order;
  // Scheduled last, yet the front-band event must pop first at t = 50.
  e.schedule_at(SimTime::from_ps(50), [&] { order.push_back(1); });
  e.schedule_at(SimTime::from_ps(50), [&] { order.push_back(2); });
  e.schedule_at_front(SimTime::from_ps(50), [&] { order.push_back(0); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, FrontBandStillOrderedByTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::from_ps(10), [&] { order.push_back(1); });
  e.schedule_at_front(SimTime::from_ps(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now().count_ps(), 20);
}

TEST(Engine, FrontBandFifoAmongItself) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    e.schedule_at_front(SimTime::from_ps(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, FrontBandCancellable) {
  Engine e;
  bool fired = false;
  EventHandle h = e.schedule_at_front(SimTime::from_ps(5), [&] { fired = true; });
  h.cancel();
  e.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace nti::sim
