// Differential oracle for the sharded event engine (docs/SHARDING.md).
//
// Dozens of seeded random multi-segment topologies run through the sharded
// engine at several shard counts and are compared byte-for-byte — probe
// trajectory, per-segment metrics JSON, per-segment trace CSV — against the
// monolithic reference (every segment on one engine, executed serially).
// A separate case pins the degenerate end: a single-segment ShardedCluster
// must reproduce the classic Cluster's probe trajectory exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/sharded.hpp"
#include "cluster/topology.hpp"
#include "common/rng.hpp"

namespace nti {
namespace {

cluster::ClusterConfig base_config(std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.seed = seed;
  cfg.sync.round_period = Duration::ms(200);
  cfg.sync.resync_offset = Duration::ms(50);
  cfg.initial_offset_spread = Duration::us(100);
  cfg.trace_capacity = 2048;
  return cfg;
}

std::string run_signature(const cluster::TopologySpec& topo, std::size_t shards,
                          std::size_t threads, std::uint64_t seed) {
  cluster::ClusterConfig cfg = base_config(seed);
  cfg.topology = topo;
  cfg.topology.shards = shards;
  cfg.topology.threads = threads;
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(Duration::ms(900), Duration::ms(300));
  return sc.output_signature();
}

TEST(ShardDifferential, RandomTopologiesMatchMonolithicOracle) {
  int topologies = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RngStream rng(seed * 977);
    const int segments = static_cast<int>(rng.uniform_int(2, 4));
    const int nodes = static_cast<int>(rng.uniform_int(2, 4));
    cluster::TopologySpec topo = cluster::TopologySpec::ad_hoc(
        segments, nodes, 0.3, Duration::ms(1), seed);
    // Heterogeneous gateway latencies, including asymmetric directions.
    for (cluster::TopoLink& l : topo.links) {
      l.latency = rng.uniform(Duration::us(50), Duration::ms(2));
    }
    topo.bridge_phase = Duration::ms(60);

    // The monolithic reference: every segment on ONE engine, run serially.
    const std::string oracle = run_signature(topo, 1, 1, seed);
    ASSERT_FALSE(oracle.empty());

    const auto n_seg = static_cast<std::size_t>(segments);
    for (const std::size_t shards : {std::size_t{2}, n_seg}) {
      const std::string sharded = run_signature(topo, shards, 2, seed);
      ASSERT_EQ(oracle, sharded)
          << "seed " << seed << ": " << segments << " segments x " << nodes
          << " nodes diverged at shards=" << shards;
    }
    ++topologies;
  }
  EXPECT_EQ(topologies, 12);
}

TEST(ShardDifferential, ShardedRunActuallyCrossesShards) {
  // Guard against a vacuous oracle: the sharded configuration must really
  // exchange capsules across shard boundaries.
  cluster::TopologySpec topo =
      cluster::TopologySpec::chain(3, 2, Duration::ms(1));
  topo.bridge_phase = Duration::ms(60);
  cluster::ClusterConfig cfg = base_config(7);
  cfg.topology = topo;
  cfg.topology.shards = 3;
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(Duration::ms(900), Duration::ms(300));
  EXPECT_GT(sc.group().cross_shard_handoffs(), 0u);
  EXPECT_GT(sc.group().deliveries(), 0u);
  EXPECT_GT(sc.probes_taken(), 0u);
  // Non-reference segments fuse the gateway capsule as an extra
  // (pseudo-peer) observation each round.
  EXPECT_GT(sc.segment(1).sync(0).csps_used(), 0u);
}

TEST(ShardDifferential, SingleSegmentMatchesMonolithicCluster) {
  // With one segment and no links the sharded machinery must be an exact
  // identity wrapper: same trajectory as a classic Cluster built with the
  // segment's derived seed.
  const std::uint64_t seed = 4242;
  cluster::ClusterConfig cfg = base_config(seed);
  cfg.topology.segment_sizes = {4};

  cluster::ShardedCluster sc(cfg);
  sc.start();
  std::vector<cluster::ProbeSample> sharded;
  sc.on_probe = [&](const cluster::ProbeSample& s) { sharded.push_back(s); };
  sc.run(Duration::ms(900), Duration::ms(300));

  cluster::ClusterConfig mono = base_config(seed);
  mono.num_nodes = 4;
  mono.seed = RngStream(seed).fork("segment", 0).next_u64();
  cluster::Cluster ref(std::move(mono));
  ref.start();
  std::vector<cluster::ProbeSample> reference;
  ref.on_probe = [&](const cluster::ProbeSample& s) { reference.push_back(s); };
  ref.run(Duration::ms(900), Duration::ms(300));

  ASSERT_GT(sharded.size(), 0u);
  ASSERT_EQ(sharded.size(), reference.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].t.count_ps(), reference[i].t.count_ps()) << i;
    EXPECT_EQ(sharded[i].precision.count_ps(), reference[i].precision.count_ps())
        << i;
    EXPECT_EQ(sharded[i].worst_accuracy.count_ps(),
              reference[i].worst_accuracy.count_ps())
        << i;
    EXPECT_EQ(sharded[i].mean_alpha.count_ps(), reference[i].mean_alpha.count_ps())
        << i;
  }
  EXPECT_EQ(sc.containment_violations(), ref.containment_violations());
}

}  // namespace
}  // namespace nti
