// E7: interval-based rate synchronization (paper Sec. 2, [Scho97]).
//
// "The interval-based rate synchronization algorithm ... effectively
// reduces the maximum drift without necessitating highly accurate and
// stable oscillators at each node."
//
// The bench equips nodes with cheap uncompensated crystals (tens of ppm
// apart) and runs a *paired* Monte-Carlo ensemble: rate synchronization on
// and off over the identical replica seeds (same root seed => same
// oscillator draws per replica index), reporting the ensemble statistics
// of (a) the ground-truth spread of effective clock rates, (b) achieved
// precision, (c) the accuracy-interval growth rate.  NTI_MC_REPLICAS and
// NTI_MC_THREADS apply as everywhere.
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

mc::EnsembleResult run_ensemble(bool rate_sync) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.sync.fault_tolerance = 1;
  cfg.osc_base = osc::OscConfig::cheap_xo();
  cfg.osc_offset_spread_ppm = 30.0;
  cfg.sync.rho_bound_ppm = 100.0;  // must cover cheap crystals
  cfg.sync.rate_sync = rate_sync;
  // Wider compensation -> wider initial intervals; keep the hard-set path
  // out of steady state.
  cfg.initial_offset_spread = Duration::us(500);

  mc::McConfig mcc = mc::apply_env({});
  mcc.root_seed = 777;
  mcc.total = Duration::sec(60);
  mcc.warmup = Duration::sec(30);
  mcc.probe_period = Duration::ms(200);
  mcc.keep_trajectories = false;

  mc::Runner runner(cfg, mcc);
  runner.set_extractor([](mc::ReplicaContext& ctx) {
    auto& cl = ctx.cluster();
    ctx.metric("spread_end_ppm", cl.max_rate_spread_ppm(cl.engine().now()));
  });
  return runner.run();
}

void pair_row(const char* label, const mc::EnsembleStat& off,
              const mc::EnsembleStat& on, const char* unit) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%.3g +- %.2g | %.3g +- %.2g %s", off.mean,
                off.ci95, on.mean, on.ci95, unit);
  bench::row(label, buf);
}

}  // namespace

int main() {
  bench::header("E7: rate synchronization with cheap oscillators",
                "reduces max drift without stable oscillators ([Scho97], Sec. 2)");

  const mc::EnsembleResult off = run_ensemble(false);
  const mc::EnsembleResult on = run_ensemble(true);

  bench::row("replicas x threads",
             std::to_string(on.replicas) + " x " +
                 std::to_string(on.threads_used) + "  (OFF | ON, paired seeds)");
  pair_row("rate spread end (ppm)", *off.stat("spread_end_ppm"),
           *on.stat("spread_end_ppm"), "ppm");
  pair_row("precision max", *off.stat("precision_max_us"),
           *on.stat("precision_max_us"), "us");
  pair_row("mean alpha", *off.stat("alpha_mean_us"), *on.stat("alpha_mean_us"),
           "us");

  const double reduction = off.stat("spread_end_ppm")->mean /
                           std::max(0.01, on.stat("spread_end_ppm")->mean);
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.1fx (ensemble means)", reduction);
  bench::row("drift-spread reduction", buf);

  // Paired criterion over ensemble means; precision must improve in the
  // mean and never degrade catastrophically in any replica.
  const bool ok =
      on.stat("spread_end_ppm")->mean < off.stat("spread_end_ppm")->mean / 3.0 &&
      on.stat("precision_max_us")->mean < off.stat("precision_max_us")->mean;
  bench::verdict(ok, "rate sync shrinks drift spread and improves precision");

  bench::BenchReport report("e7_rate_sync");
  report.config("num_nodes", 6.0);
  report.config("root_seed", 777.0);
  report.config("osc_offset_spread_ppm", 30.0);
  report.from_ensemble(on);
  report.ensemble("off.spread_end_ppm", *off.stat("spread_end_ppm"));
  report.ensemble("off.precision_max_us", *off.stat("precision_max_us"));
  report.ensemble("off.alpha_mean_us", *off.stat("alpha_mean_us"));
  report.metric("drift_spread_reduction_x", reduction);
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
