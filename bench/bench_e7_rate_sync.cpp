// E7: interval-based rate synchronization (paper Sec. 2, [Scho97]).
//
// "The interval-based rate synchronization algorithm ... effectively
// reduces the maximum drift without necessitating highly accurate and
// stable oscillators at each node."
//
// The bench equips nodes with cheap uncompensated crystals (tens of ppm
// apart), runs identical scenarios with rate synchronization on and off,
// and reports (a) the ground-truth spread of effective clock rates,
// (b) achieved precision, (c) the accuracy-interval growth rate -- all
// three should improve by roughly the rate-spread reduction factor.
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

struct Outcome {
  double spread_start_ppm;
  double spread_end_ppm;
  Duration precision_max;
  Duration alpha_mean;
};

Outcome run_once(bool rate_sync) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.seed = 777;
  cfg.sync.fault_tolerance = 1;
  cfg.osc_base = osc::OscConfig::cheap_xo();
  cfg.osc_offset_spread_ppm = 30.0;
  cfg.sync.rho_bound_ppm = 100.0;  // must cover cheap crystals
  cfg.sync.rate_sync = rate_sync;
  // Wider compensation -> wider initial intervals; keep the hard-set path
  // out of steady state.
  cfg.initial_offset_spread = Duration::us(500);
  cluster::Cluster cl(cfg);
  cl.start();
  Outcome o{};
  o.spread_start_ppm = cl.max_rate_spread_ppm(SimTime::epoch() + Duration::ms(10));
  cl.run(Duration::sec(60), Duration::sec(30), Duration::ms(200));
  o.spread_end_ppm = cl.max_rate_spread_ppm(cl.engine().now());
  o.precision_max = cl.precision_samples().max_duration();
  o.alpha_mean = cl.alpha_samples().mean_duration();
  return o;
}

}  // namespace

int main() {
  bench::header("E7: rate synchronization with cheap oscillators",
                "reduces max drift without stable oscillators ([Scho97], Sec. 2)");

  const Outcome off = run_once(false);
  const Outcome on = run_once(true);

  char buf[96];
  std::printf("  %-26s %-16s %-16s\n", "", "rate sync OFF", "rate sync ON");
  std::snprintf(buf, sizeof buf, "  %-26s %-16.2f %-16.2f", "rate spread start (ppm)",
                off.spread_start_ppm, on.spread_start_ppm);
  std::puts(buf);
  std::snprintf(buf, sizeof buf, "  %-26s %-16.2f %-16.2f", "rate spread end (ppm)",
                off.spread_end_ppm, on.spread_end_ppm);
  std::puts(buf);
  std::snprintf(buf, sizeof buf, "  %-26s %-16s %-16s", "precision max",
                off.precision_max.str().c_str(), on.precision_max.str().c_str());
  std::puts(buf);
  std::snprintf(buf, sizeof buf, "  %-26s %-16s %-16s", "mean alpha",
                off.alpha_mean.str().c_str(), on.alpha_mean.str().c_str());
  std::puts(buf);

  const double reduction = off.spread_end_ppm / std::max(0.01, on.spread_end_ppm);
  std::snprintf(buf, sizeof buf, "%.1fx", reduction);
  bench::row("drift-spread reduction", buf);

  const bool ok = on.spread_end_ppm < off.spread_end_ppm / 3.0 &&
                  on.precision_max < off.precision_max;
  bench::verdict(ok, "rate sync shrinks drift spread and improves precision");

  bench::BenchReport report("e7_rate_sync");
  report.config("num_nodes", 6.0);
  report.config("seed", 777.0);
  report.config("osc_offset_spread_ppm", 30.0);
  report.metric("spread_end_ppm_off", off.spread_end_ppm);
  report.metric("spread_end_ppm_on", on.spread_end_ppm);
  report.metric("precision_max_off", off.precision_max);
  report.metric("precision_max_on", on.precision_max);
  report.metric("alpha_mean_off", off.alpha_mean);
  report.metric("alpha_mean_on", on.alpha_mean);
  report.metric("drift_spread_reduction_x", reduction);
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
