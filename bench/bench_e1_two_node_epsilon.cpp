// E1: two-node transmission/reception uncertainty epsilon.
//
// Paper (Sec. 4): "some preliminary experiments with a two-node system
// revealed a transmission/reception time uncertainty epsilon well below
// 1 us".  epsilon is the variability of the difference between the real
// times of CSP timestamping at the peer nodes -- here measured from
// simulation ground truth (trigger instants) over thousands of CSPs, and
// cross-checked against what the exchanged hardware stamps themselves
// imply.
//
// The claim is statistical, so the bench runs a Monte-Carlo ensemble
// (default 16 replicas, NTI_MC_REPLICAS / NTI_MC_THREADS override) and
// reports epsilon's ensemble mean/ci95/min/max; the verdict requires the
// *worst* replica to stay below 1 us.  Replica 0 additionally writes the
// Chrome trace / time-series artifacts the single-seed bench used to emit.
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

struct GapSets {
  SampleSet truth;  // ground-truth trigger-to-trigger delay
  SampleSet stamp;  // what the stamps say (includes clock offset)
};

}  // namespace

int main() {
  bench::BenchReport report("e1_two_node_epsilon");
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.sync.round_period = Duration::ms(100);  // dense rounds: many samples
  cfg.sync.resync_offset = Duration::ms(50);
  // Causal tracing + trajectory recording: spans feed per-stage latency
  // histograms and the Chrome trace export (artifacts written from replica
  // 0); the cap keeps the trace file Perfetto-sized.
  cfg.enable_spans = true;
  cfg.span_max_events = 20'000;
  cfg.record_timeseries = true;

  mc::McConfig mcc = mc::apply_env({});
  mcc.root_seed = 1;
  mcc.total = Duration::sec(120);
  mcc.warmup = Duration::sec(20);
  mcc.probe_period = Duration::ms(100);
  mcc.keep_trajectories = false;

  report.config("num_nodes", static_cast<double>(cfg.num_nodes));
  report.config("root_seed", static_cast<double>(mcc.root_seed));
  report.config("round_period", cfg.sync.round_period);
  report.config("sim_seconds", mcc.total.to_sec_f());

  // Per-replica gap sets live in a pre-sized slot array: each replica only
  // touches its own index, so worker threads never contend.
  std::vector<GapSets> gaps(mcc.replicas);

  mc::Runner runner(cfg, mcc);
  runner.set_replica_hook([&gaps](mc::ReplicaContext& ctx) {
    GapSets& g = gaps[ctx.index()];
    auto& cl = ctx.cluster();
    const SimTime warmup = SimTime::epoch() + Duration::sec(20);
    auto prev = cl.node(1).driver().on_csp;
    cl.node(1).driver().on_csp = [prev, warmup, &g, &cl](const node::RxCsp& rx) {
      if (cl.engine().now() >= warmup) {  // skip initial convergence
        g.truth.add(cl.node(1).comco().last_rx_trigger_time() -
                    cl.node(0).comco().last_tx_trigger_time());
        if (rx.rx_stamp_valid && rx.tx_stamp.checksum_ok) {
          g.stamp.add(rx.rx_stamp.time() - rx.tx_stamp.time());
        }
      }
      prev(rx);
    };
  });
  runner.set_extractor([&gaps](mc::ReplicaContext& ctx) {
    GapSets& g = gaps[ctx.index()];
    ctx.metric("epsilon_us", (g.truth.max() - g.truth.min()) * 1e-6);
    ctx.metric("stamp_epsilon_us", (g.stamp.max() - g.stamp.min()) * 1e-6);
    ctx.metric("csps", static_cast<double>(g.truth.count()));
    if (ctx.index() == 0) {
      auto& cl = ctx.cluster();
      cl.probe();  // stamp pi/alpha scalars before the artifact dump
      obs::write_chrome_trace("TRACE_e1_two_node_epsilon.json", *cl.spans());
      cl.timeseries()->write_csv("TIMESERIES_e1_two_node_epsilon.csv");
    }
  });

  const mc::EnsembleResult ens = runner.run();

  bench::header("E1: two-node epsilon (NTI hardware timestamping)",
                "epsilon well below 1 us (Sec. 4)");
  const mc::EnsembleStat* eps = ens.stat("epsilon_us");
  const mc::EnsembleStat* stamp_eps = ens.stat("stamp_epsilon_us");
  const mc::EnsembleStat* csps = ens.stat("csps");
  bench::row("replicas x threads",
             std::to_string(ens.replicas) + " x " +
                 std::to_string(ens.threads_used));
  if (csps != nullptr) {
    bench::row("CSPs measured per replica", bench::ensemble_summary(*csps, ""));
  }
  if (eps != nullptr) {
    bench::row("epsilon ensemble", bench::ensemble_summary(*eps));
  }
  if (stamp_eps != nullptr) {
    bench::row("stamp-implied gap variability",
               bench::ensemble_summary(*stamp_eps) +
                   " (adds clock offset wander + 2x granularity)");
  }
  const comco::ComcoConfig cc;
  bench::row("engineered jitter budget",
             (cc.fifo_lead_jitter + cc.rx_arb_jitter).str());

  const bool ok = eps != nullptr && eps->max < 1.0;
  bench::verdict(ok, "epsilon below 1 us in every replica");

  report.from_ensemble(ens);
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
