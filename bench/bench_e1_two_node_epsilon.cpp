// E1: two-node transmission/reception uncertainty epsilon.
//
// Paper (Sec. 4): "some preliminary experiments with a two-node system
// revealed a transmission/reception time uncertainty epsilon well below
// 1 us".  epsilon is the variability of the difference between the real
// times of CSP timestamping at the peer nodes -- here measured from
// simulation ground truth (trigger instants) over thousands of CSPs, and
// cross-checked against what the exchanged hardware stamps themselves
// imply.
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

int main() {
  bench::BenchReport report("e1_two_node_epsilon");
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.seed = 1;
  cfg.sync.round_period = Duration::ms(100);  // dense rounds: many samples
  cfg.sync.resync_offset = Duration::ms(50);
  // Causal tracing + trajectory recording: spans feed per-stage latency
  // histograms (into the JSON via the registry) and the Chrome trace
  // export; the cap keeps the trace file Perfetto-sized while histograms
  // keep accumulating over the full run.
  cfg.enable_spans = true;
  cfg.span_max_events = 20'000;
  cfg.record_timeseries = true;
  report.config("num_nodes", static_cast<double>(cfg.num_nodes));
  report.config("seed", static_cast<double>(cfg.seed));
  report.config("round_period", cfg.sync.round_period);
  report.config("sim_seconds", 300.0);
  cluster::Cluster cl(cfg);
  cl.start();

  SampleSet truth_gap;    // ground-truth trigger-to-trigger delay
  SampleSet stamp_gap;    // what the stamps say (includes clock offset)
  const SimTime warmup = SimTime::epoch() + Duration::sec(20);
  auto prev = cl.node(1).driver().on_csp;
  cl.node(1).driver().on_csp = [&](const node::RxCsp& rx) {
    if (cl.engine().now() >= warmup) {  // skip initial convergence
      truth_gap.add(cl.node(1).comco().last_rx_trigger_time() -
                    cl.node(0).comco().last_tx_trigger_time());
      if (rx.rx_stamp_valid && rx.tx_stamp.checksum_ok) {
        stamp_gap.add(rx.rx_stamp.time() - rx.tx_stamp.time());
      }
    }
    prev(rx);
  };

  // Periodic probing (instead of a bare run_until) drives the pi(t) /
  // alpha(t) time-series recorder.
  cl.run(Duration::sec(300), Duration::sec(20), Duration::ms(100));

  bench::header("E1: two-node epsilon (NTI hardware timestamping)",
                "epsilon well below 1 us (Sec. 4)");
  const Duration eps = Duration::ps(
      static_cast<std::int64_t>(truth_gap.max() - truth_gap.min()));
  bench::row("CSPs measured", std::to_string(truth_gap.count()));
  bench::row("trigger-gap distribution", bench::dist_summary(truth_gap));
  bench::row("epsilon (max - min of trigger gap)", eps.str());
  const Duration stamp_eps = Duration::ps(
      static_cast<std::int64_t>(stamp_gap.max() - stamp_gap.min()));
  bench::row("stamp-implied gap variability", stamp_eps.str() +
             " (adds clock offset wander + 2x granularity)");
  const comco::ComcoConfig cc;
  bench::row("engineered jitter budget",
             (cc.fifo_lead_jitter + cc.rx_arb_jitter).str());
  bench::verdict(eps < Duration::us(1), "epsilon below 1 us");

  // A final probe stamps the precision/accuracy-envelope scalars into the
  // cluster registry so the JSON trajectory carries pi and alpha too.
  cl.probe();
  report.metric("epsilon", eps);
  report.metric("stamp_epsilon", stamp_eps);
  report.distribution("trigger_gap", truth_gap);
  report.from_registry(cl.metrics());
  report.pass(eps < Duration::us(1));
  report.write();

  // Artifacts: CSP lifecycle spans as a Perfetto-loadable Chrome trace,
  // and the probe trajectories as CSV.
  if (obs::write_chrome_trace("TRACE_e1_two_node_epsilon.json", *cl.spans())) {
    bench::row("chrome trace", "TRACE_e1_two_node_epsilon.json (" +
                                   std::to_string(cl.spans()->event_count()) +
                                   " span events)");
  }
  if (cl.timeseries()->write_csv("TIMESERIES_e1_two_node_epsilon.csv")) {
    bench::row("time series", "TIMESERIES_e1_two_node_epsilon.csv (" +
                                  std::to_string(cl.timeseries()->rows()) +
                                  " samples)");
  }
  return eps < Duration::us(1) ? 0 : 1;
}
