// E6: interval-based clock validation against the GPS failure catalogue
// (paper Secs. 2 and 5, and the [HS97] two-month receiver evaluation:
// "a wide variety of failures").
//
// Validation accepts an external interval only when it is consistent with
// the internally derived validation interval V.  That draws a precise
// detectability boundary:
//   * faults LARGER than V's width (ms-level spikes, wrong second labels)
//     are rejected outright -- zero influence on the clocks;
//   * faults INSIDE V's width (a few tens of us) are *undetectable by
//     construction*: the external interval still claims to contain t and
//     nothing internal contradicts it.  Validation then bounds the damage
//     to V's width -- "simultaneously increasing the fault-tolerance
//     degree" (Sec. 5) means exactly this graceful bound, not magic.
// The bench drives one failure class per run (two receivers, so anchored
// edges survive f = 1 trimming) and checks each class lands on the right
// side of that boundary.
#include <cctype>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

struct Outcome {
  int offered_in_window = 0;
  int accepted_in_window = 0;
  Duration precision_p90;
  Duration accuracy_max;   ///< worst |C - UTC| over the whole run
  std::uint64_t violations = 0;
};

/// Wrap a single GPS-kind spec (hitting every receiver) into a plan.
fault::FaultPlan plan_of(fault::FaultSpec spec) {
  fault::FaultPlan p;
  p.add(std::move(spec));
  return p;
}

Outcome run_fault(fault::FaultPlan plan) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 66;
  cfg.sync.fault_tolerance = 1;
  cfg.gps_nodes = {0, 1};  // f + 1 anchored inputs
  cfg.faults = std::move(plan);
  cluster::Cluster cl(cfg);
  Outcome out;
  const SimTime w_start = SimTime::epoch() + Duration::sec(10);
  const SimTime w_end = SimTime::epoch() + Duration::sec(22);
  cl.sync(0).on_round = [&](const csa::RoundReport& r) {
    const SimTime t = cl.engine().now();
    if (t > w_start + Duration::sec(1) && t < w_end && r.gps_offered) {
      ++out.offered_in_window;
      if (r.gps_accepted) ++out.accepted_in_window;
    }
  };
  cl.start();
  cl.run(Duration::sec(30), Duration::sec(5));
  out.precision_p90 = cl.precision_samples().percentile_duration(90);
  out.accuracy_max = cl.accuracy_samples().max_duration();
  out.violations = cl.containment_violations();
  return out;
}

}  // namespace

int main() {
  bench::header("E6: clock validation vs the [HS97] GPS failure catalogue",
                "gross faults quarantined outright; within-V faults bounded "
                "by the validation interval's width");

  const SimTime f_start = SimTime::epoch() + Duration::sec(10);
  const SimTime f_end = SimTime::epoch() + Duration::sec(22);
  // With two anchored receivers the validation interval V tightens to the
  // ~10 us level after convergence -- the detectability boundary scales
  // with the uncertainty actually achieved, which is exactly the paper's
  // point about redundancy "increasing the fault-tolerance degree".
  // Damage from an accepted within-V fault must stay below that width
  // (plus the coasting drift while it lasts).
  const Duration v_width_bound = Duration::us(30);

  bool all_ok = true;
  bench::BenchReport report("e6_gps_validation");
  report.config("num_nodes", 4.0);
  report.config("seed", 66.0);
  report.config("v_width_bound", v_width_bound);
  std::printf("  %-32s %-9s %-9s %-14s %-12s %s\n", "failure class", "offered",
              "accepted", "precision p90", "|C-UTC| max", "violations");
  const auto print_row = [&report](const char* name, const Outcome& o) {
    std::printf("  %-32s %-9d %-9d %-14s %-12s %llu\n", name,
                o.offered_in_window, o.accepted_in_window,
                o.precision_p90.str().c_str(), o.accuracy_max.str().c_str(),
                static_cast<unsigned long long>(o.violations));
    // Per-class scalars in the JSON trajectory, keyed by a slug of the
    // human-readable class name ("offset spike +5 ms (gross)" ->
    // "offset_spike_5_ms_gross").
    std::string key;
    for (const char* p = name; *p != '\0'; ++p) {
      if (std::isalnum(static_cast<unsigned char>(*p))) {
        key += *p;
      } else if (!key.empty() && key.back() != '_') {
        key += '_';
      }
    }
    if (!key.empty() && key.back() == '_') key.pop_back();
    report.metric(key + "_accepted", static_cast<std::uint64_t>(o.accepted_in_window));
    report.metric(key + "_offered", static_cast<std::uint64_t>(o.offered_in_window));
    report.metric(key + "_accuracy_max", o.accuracy_max);
    report.metric(key + "_violations", o.violations);
  };

  // --- gross faults: must be rejected, zero influence ----------------------
  {
    const Outcome o = run_fault(plan_of(
        fault::FaultSpec::gps_offset_spike(-1, Duration::ms(5), f_start, f_end)));
    print_row("offset spike +5 ms (gross)", o);
    if (o.accepted_in_window != 0 || o.violations != 0) all_ok = false;
    if (o.precision_p90 > Duration::us(8)) all_ok = false;
  }
  {
    const Outcome o = run_fault(
        plan_of(fault::FaultSpec::gps_wrong_second(-1, 1, f_start, f_end)));
    print_row("wrong second label +1 s (gross)", o);
    if (o.accepted_in_window != 0 || o.violations != 0) all_ok = false;
  }

  // --- subtle fault inside V: undetectable by construction; damage must be
  // bounded by the validation width -----------------------------------------
  {
    // A spike larger than V but far below the gross level: with redundant
    // receivers V has tightened enough to catch even this.
    const Outcome o = run_fault(plan_of(fault::FaultSpec::gps_offset_spike(
        -1, Duration::us(40), f_start, f_end)));
    print_row("offset spike +40 us (outside tight V)", o);
    if (o.accepted_in_window != 0 || o.violations != 0) all_ok = false;
  }
  {
    const Outcome o = run_fault(plan_of(
        fault::FaultSpec::gps_offset_spike(-1, Duration::us(4), f_start, f_end)));
    print_row("offset spike +4 us (within V)", o);
    if (o.accepted_in_window == 0) all_ok = false;        // cannot be detected
    if (o.accuracy_max > v_width_bound) all_ok = false;   // ...but is bounded
  }

  // --- ramps: the detectability boundary is a *rate*, not an offset -------
  {
    // A ramp slower than V's width per round is TRACKED: each accepted fix
    // drags the clocks along and V chases the fault.  This is the known
    // Achilles heel of consistency-based validation (and why [HS97]
    // advocates long-term receiver monitoring on top); the damage is
    // bounded by ramp_rate x fault_duration, not by V.
    const Outcome o = run_fault(plan_of(
        fault::FaultSpec::gps_stuck(-1, Duration::us(2), f_start, f_end)));
    print_row("free-running +2 us/s (slow ramp)", o);
    if (o.accepted_in_window < o.offered_in_window) all_ok = false;  // tracked
    if (o.accuracy_max > Duration::us(2) * 12 + Duration::us(10)) all_ok = false;
  }
  {
    // A ramp faster than V's width per round escapes immediately.
    const Outcome o = run_fault(plan_of(
        fault::FaultSpec::gps_stuck(-1, Duration::us(50), f_start, f_end)));
    print_row("free-running +50 us/s (fast ramp)", o);
    if (o.accepted_in_window != 0 || o.violations != 0) all_ok = false;
  }

  // --- omission: nothing to offer, internal sync carries through -----------
  {
    const Outcome o =
        run_fault(plan_of(fault::FaultSpec::gps_omission(-1, f_start, f_end)));
    print_row("pulse omission", o);
    if (o.offered_in_window != 0 || o.violations != 0) all_ok = false;
    if (o.precision_p90 > Duration::us(8)) all_ok = false;
  }

  // --- healthy control: accepted, tight accuracy ---------------------------
  {
    const Outcome o = run_fault(fault::FaultPlan{});
    print_row("healthy (control)", o);
    if (o.accepted_in_window < o.offered_in_window * 8 / 10) all_ok = false;
    if (o.violations != 0) all_ok = false;
    if (o.accuracy_max > Duration::us(600)) all_ok = false;  // incl. cold start
  }

  bench::verdict(all_ok,
                 "detectability boundary as designed: gross faults rejected "
                 "with zero influence, within-V faults and slow ramps cause "
                 "only bounded damage, healthy receivers accepted");
  report.pass(all_ok);
  report.write();
  return all_ok ? 0 : 1;
}
