// E4: the timestamping-method ladder (paper Secs. 1, 3.1, 5).
//
// Where a CSP is timestamped determines which steps of the transmission
// sequence (Sec. 3.1, steps 1-7) fall inside the uncertainty epsilon:
//   software  (steps 1..7): assembly at task level -> delivery at task
//             level; includes medium access under load, interrupt latency,
//             and scheduling -> ms range;
//   interrupt (steps ~4..7): completion-ISR clock reads on both sides;
//             excludes medium access but keeps ISR dispatch jitter
//             (the CSU class of [KO87]) -> 10..100 us range;
//   hardware  (step 4/5 only): the NTI's DMA triggers; only COMCO FIFO and
//             bus-arbitration jitter remain -> sub-us.
// The bench measures all three epsilons on the same packet stream, under
// 40% background channel load, with ideal oscillators so that clock reads
// equal real time and the comparison is exact.
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

node::NodeConfig make_cfg(int id) {
  node::NodeConfig c;
  c.node_id = id;
  c.osc = osc::OscConfig::ideal(10e6);
  return c;
}

}  // namespace

int main() {
  sim::Engine engine;
  RngStream root(4);
  net::Medium medium(engine, net::MediumConfig{}, root.fork("medium"));
  node::NodeCard tx_node(engine, medium, make_cfg(0), root);
  node::NodeCard rx_node(engine, medium, make_cfg(1), root);

  // Manual span wiring (this bench has no Cluster): the same collector is
  // threaded through the medium and both cards, so the per-stage latency
  // histograms and the Chrome trace cover the CSP stream under load.
  // Background traffic bypasses the driver and stays untraced (trace 0).
  obs::SpanCollector spans(50'000);
  medium.set_spans(&spans);
  tx_node.set_spans(&spans);
  rx_node.set_spans(&spans);
  obs::MetricsRegistry reg;
  spans.register_metrics(reg, "span.");
  medium.register_metrics(reg, "net.medium.");

  net::TrafficConfig tc;
  tc.offered_load = 0.4;
  net::TrafficGenerator traffic(engine, medium, tc, root.fork("traffic"));

  // Sender-side instants per method.
  Duration tx_sw_clock;                  // clock at CSP assembly (task)
  SimTime tx_int_time = SimTime::epoch();  // tx-complete ISR instant
  tx_node.comco().on_tx_complete = [&](int) {
    // CSU-style: the completion interrupt is the transmit timestamp point.
    engine.schedule_in(Duration::us(15), [&] { tx_int_time = engine.now(); });
  };

  SampleSet eps_sw, eps_int, eps_hw;
  rx_node.driver().on_csp = [&](const node::RxCsp& rx) {
    // Hardware: the stamp pair itself.  (With ideal clocks the stamps read
    // real time; the SSU + Receive-Header-Base machinery guarantees the
    // pair belongs to this packet even with background frames interleaved,
    // which raw "last trigger" probes cannot.)
    if (rx.rx_stamp_valid && rx.tx_stamp.checksum_ok) {
      eps_hw.add(rx.rx_stamp.time() - rx.tx_stamp.time());
    }
    // Interrupt: completion-ISR to rx-ISR clock read (clock == real time).
    if (tx_int_time != SimTime::epoch()) {
      eps_int.add(rx.rx_clock_isr - (tx_int_time - SimTime::epoch()));
    }
    // Software: assembly-time clock to task-delivery clock.
    eps_sw.add(rx.rx_clock_task - tx_sw_clock);
  };

  // One CSP every 20 ms for 200 simulated seconds.
  for (int i = 0; i < 10'000; ++i) {
    engine.schedule_at(SimTime::epoch() + Duration::ms(20) * i + Duration::ms(1),
                       [&] {
                         tx_sw_clock = tx_node.driver().read_clock(engine.now());
                         csa::CspPayload p;
                         p.kind = csa::CspKind::kSync;
                         tx_node.driver().send_csp(p.encode());
                       });
  }
  // Bounded horizon: the background generator never stops by itself.
  engine.run_until(SimTime::epoch() + Duration::sec(201));

  bench::header("E4: timestamping-method comparison",
                "software: ms-range; interrupt/CSU: 10 us-range; NTI: 1 us-range");
  auto spread = [](SampleSet& s) {
    return Duration::ps(static_cast<std::int64_t>(s.max() - s.min()));
  };
  const Duration sw = spread(eps_sw), in = spread(eps_int), hw = spread(eps_hw);
  bench::row("software (task-level) gap", bench::dist_summary(eps_sw));
  bench::row("  -> epsilon_software", sw.str());
  bench::row("interrupt (ISR-level) gap", bench::dist_summary(eps_int));
  bench::row("  -> epsilon_interrupt", in.str());
  bench::row("hardware (DMA trigger) gap", bench::dist_summary(eps_hw));
  bench::row("  -> epsilon_hardware", hw.str());
  std::printf("\n  ladder (each step should improve by >= one order of magnitude):\n");
  std::printf("    software %.1f us  >>  interrupt %.1f us  >>  hardware %.3f us\n",
              sw.to_us_f(), in.to_us_f(), hw.to_us_f());
  const bool ok = hw < Duration::us(1) && in > hw * 10 && sw > in * 5;
  bench::verdict(ok, "ordering software >> interrupt >> hardware, NTI < 1 us");

  bench::BenchReport report("e4_timestamp_methods");
  report.config("offered_load", tc.offered_load);
  report.config("sim_seconds", 200.0);
  report.metric("epsilon_software", sw);
  report.metric("epsilon_interrupt", in);
  report.metric("epsilon_hardware", hw);
  report.distribution("hw_gap", eps_hw);
  report.from_registry(reg);
  report.pass(ok);
  report.write();

  if (obs::write_chrome_trace("TRACE_e4_timestamp_methods.json", spans)) {
    bench::row("chrome trace", "TRACE_e4_timestamp_methods.json (" +
                                   std::to_string(spans.event_count()) +
                                   " span events)");
  }
  return ok ? 0 : 1;
}
