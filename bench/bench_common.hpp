// Shared reporting helpers for the experiment benches.
//
// Every bench prints (1) the paper's claim, (2) the measured result from
// the simulation, (3) a PASS/DEVIATION verdict on the claim's *shape*.
// EXPERIMENTS.md aggregates these outputs.
#pragma once

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "common/time_types.hpp"

namespace nti::bench {

inline void header(const char* id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("--------------------------------------------------------------\n");
}

inline void row(const char* label, const std::string& value) {
  std::printf("  %-44s %s\n", label, value.c_str());
}

inline void verdict(bool ok, const char* what) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("VERDICT: %s -- %s\n\n", ok ? "PASS" : "DEVIATION", what);
}

inline std::string dist_summary(SampleSet& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "min %s  p50 %s  p99 %s  max %s (n=%zu)",
                Duration::ps(static_cast<std::int64_t>(s.min())).str().c_str(),
                s.percentile_duration(50).str().c_str(),
                s.percentile_duration(99).str().c_str(),
                s.max_duration().str().c_str(), s.count());
  return buf;
}

}  // namespace nti::bench
