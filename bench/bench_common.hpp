// Shared reporting helpers for the experiment benches.
//
// Every bench prints (1) the paper's claim, (2) the measured result from
// the simulation, (3) a PASS/DEVIATION verdict on the claim's *shape*.
// EXPERIMENTS.md aggregates these outputs.
//
// In addition to the human-readable report, every bench serializes its key
// scalars through BenchReport into BENCH_<name>.json (schema:
// {"bench": ..., "metrics": {...}, "config": {...}, "obs": {...},
// "prof": {...}, "manifest": {...}}) so the repo's perf trajectory is
// machine-readable PR-over-PR.  Conventions: durations are reported in
// microseconds under keys suffixed _us; counters are raw counts; the
// verdict lands under metrics.pass (1/0).  The manifest section is emitted
// unconditionally (provenance is not opt-in -- collect_bench.py --expect
// fails reports without it); obs/prof appear when populated.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/time_types.hpp"
#include "mc/runner.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace nti::bench {

inline void header(const char* id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("--------------------------------------------------------------\n");
}

inline void row(const char* label, const std::string& value) {
  std::printf("  %-44s %s\n", label, value.c_str());
}

inline void verdict(bool ok, const char* what) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("VERDICT: %s -- %s\n\n", ok ? "PASS" : "DEVIATION", what);
}

/// "mean x +- ci [min, max] (n=N)" row text for one ensemble statistic.
inline std::string ensemble_summary(const mc::EnsembleStat& s, const char* unit = "us") {
  char buf[160];
  std::snprintf(buf, sizeof buf, "mean %.4g +- %.2g %s  [%.4g, %.4g] (n=%zu)",
                s.mean, s.ci95, unit, s.min, s.max, s.n);
  return buf;
}

inline std::string dist_summary(SampleSet& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "min %s  p50 %s  p99 %s  max %s (n=%zu)",
                Duration::ps(static_cast<std::int64_t>(s.min())).str().c_str(),
                s.percentile_duration(50).str().c_str(),
                s.percentile_duration(99).str().c_str(),
                s.max_duration().str().c_str(), s.count());
  return buf;
}

/// Collects a bench's key scalars and writes BENCH_<name>.json on write()
/// (or at destruction, if the bench exits early).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() {
    if (!written_) write();
  }

  void config(const std::string& key, double v) { config_.add(key, v); }
  void config(const std::string& key, const std::string& v) { config_.add(key, v); }
  void config(const std::string& key, Duration d) { config_.add(key + "_us", d.to_us_f()); }

  void metric(const std::string& key, double v) { metrics_.add(key, v); }
  void metric(const std::string& key, std::uint64_t v) { metrics_.add(key, v); }
  void metric(const std::string& key, Duration d) { metrics_.add(key + "_us", d.to_us_f()); }
  /// Expands to <key>_{min,mean,p50,p99,max}_us plus <key>_n.  Samples must
  /// be Duration-valued (picoseconds), as everywhere in the benches.
  void distribution(const std::string& key, SampleSet& s) {
    const SampleSummary sum = s.summary();
    metrics_.add(key + "_min_us", sum.min * 1e-6);
    metrics_.add(key + "_mean_us", sum.mean * 1e-6);
    metrics_.add(key + "_p50_us", sum.p50 * 1e-6);
    metrics_.add(key + "_p99_us", sum.p99 * 1e-6);
    metrics_.add(key + "_max_us", sum.max * 1e-6);
    metrics_.add(key + "_n", static_cast<std::uint64_t>(sum.n));
  }
  /// Fold a whole registry snapshot (engine/medium/csa/cluster counters)
  /// into the metrics object.
  void from_registry(const obs::MetricsRegistry& reg) {
    for (const auto& m : reg.snapshot()) metrics_.add(m.name, m.value);
  }
  /// Emit one ensemble statistic as <key>.{mean,ci95,min,max}.
  void ensemble(const std::string& key, const mc::EnsembleStat& s) {
    metrics_.add(key + ".mean", s.mean);
    metrics_.add(key + ".ci95", s.ci95);
    metrics_.add(key + ".min", s.min);
    metrics_.add(key + ".max", s.max);
  }
  /// Fold a whole Monte-Carlo ensemble into the metrics object: every
  /// per-metric statistic (as <name>.{mean,ci95,min,max}) plus the merged
  /// probe histograms.  Wall-clock throughput is deliberately left out so
  /// the emitted JSON stays rerun-identical (bench_mc_scaling is the one
  /// bench that reports it, explicitly).  The config object records the
  /// replica/thread counts.
  void from_ensemble(const mc::EnsembleResult& ens) {
    for (const auto& [name, s] : ens.stats) ensemble(name, s);
    metrics_.add("mc.precision_p99_us", ens.precision_hist.percentile(99));
    metrics_.add("mc.precision_max_us", ens.precision_hist.max());
    metrics_.add("mc.accuracy_p99_us", ens.accuracy_hist.percentile(99));
    metrics_.add("mc.accuracy_max_us", ens.accuracy_hist.max());
    metrics_.add("mc.probe_count", ens.precision_hist.count());
    config_.add("mc_replicas", static_cast<std::uint64_t>(ens.replicas));
    config_.add("mc_threads", static_cast<std::uint64_t>(ens.threads_used));
    manifest_.threads = ens.threads_used;
  }
  /// Record the bench verdict (also what the JSON trajectory trends on).
  void pass(bool ok) { metrics_.add("pass", ok ? 1.0 : 0.0); }

  /// Workload provenance for the manifest (build-side fields are stamped
  /// automatically).  from_ensemble() also sets threads from the run.
  void manifest_seed(std::uint64_t seed) { manifest_.seed = seed; }
  void manifest_threads(std::size_t threads) { manifest_.threads = threads; }

  /// Observability-health scalars ("obs" section): trace-record loss, span
  /// drops -- the numbers collect_bench.py audits for silent data loss.
  void obs_metric(const std::string& key, double v) { obs_.add(key, v); }
  void obs_metric(const std::string& key, std::uint64_t v) { obs_.add(key, v); }

  /// Attach profiler rows ("prof" section): name -> {calls, total_us,
  /// self_us}, in snapshot()'s deterministic name order.
  void prof_zones(const std::vector<obs::prof::ZoneStats>& zones) {
    prof_ = zones_json(zones);
  }

  /// Render zone rows as an insertion-ordered JSON object.
  static obs::JsonObject zones_json(
      const std::vector<obs::prof::ZoneStats>& zones) {
    obs::JsonObject out;
    for (const auto& z : zones) {
      obs::JsonObject row;
      row.add("calls", z.calls);
      row.add("total_us", static_cast<double>(z.total_ns) / 1e3);
      row.add("self_us", static_cast<double>(z.self_ns) / 1e3);
      out.add_object(z.name, row);
    }
    return out;
  }

  /// Serialize to BENCH_<name>.json in the current working directory.
  void write() {
    written_ = true;
    obs::JsonObject root;
    root.add("bench", name_);
    root.add_object("metrics", metrics_);
    root.add_object("config", config_);
    if (!obs_.empty()) root.add_object("obs", obs_);
    if (!prof_.empty()) root.add_object("prof", prof_);
    root.add_object("manifest", manifest_.to_json());
    const std::string path = "BENCH_" + name_ + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string body = root.str();
      std::fwrite(body.data(), 1, body.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
    }
  }

 private:
  std::string name_;
  obs::JsonObject metrics_;
  obs::JsonObject config_;
  obs::JsonObject obs_;
  obs::JsonObject prof_;
  obs::RunManifest manifest_ = obs::RunManifest::current();
  bool written_ = false;
};

/// Standalone profiler dump: PROF_<name>.json with the zone rows plus the
/// same manifest as the bench report (CI uploads these as artifacts; see
/// docs/PERFORMANCE.md "Reading PROF_*.json").
inline void write_prof_json(const std::string& name,
                            const std::vector<obs::prof::ZoneStats>& zones,
                            std::uint64_t seed = 0, std::size_t threads = 0) {
  obs::RunManifest m = obs::RunManifest::current();
  m.seed = seed;
  if (threads != 0) m.threads = threads;
  obs::JsonObject root;
  root.add("bench", name);
  root.add_object("zones", BenchReport::zones_json(zones));
  root.add_object("manifest", m.to_json());
  const std::string path = "PROF_" + name + ".json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string body = root.str();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "write_prof_json: cannot write %s\n", path.c_str());
  }
}

}  // namespace nti::bench
