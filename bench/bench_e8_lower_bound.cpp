// E8: the Lundelius-Lynch lower bound (paper Sec. 3.1, [LL84]).
//
// "Even n ideal clocks cannot be synchronized with a worst case precision
// less than epsilon (1 - 1/n) in presence of a transmission/reception
// time uncertainty epsilon."
//
// The bound constrains the *guaranteeable worst case* over adversarial
// delay assignments; a stochastic run's measured maximum can sit somewhat
// below it (the adversary never shows up) and must never sit far above
// it.  The bench measures epsilon from ground truth for each cluster
// size, computes the floor epsilon (1 - 1/n), and verifies the shape:
// achieved precision is the same order as the floor (within [1/4, 8x]
// once granularity terms are added) and both grow with n.
#include <vector>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

int main() {
  bench::header("E8: achieved precision vs the [LL84] lower bound",
                "no algorithm beats epsilon(1 - 1/n)");

  std::printf("  %-4s %-12s %-14s %-14s %-8s\n", "n", "epsilon", "LL bound",
              "precision max", "ratio");
  bench::BenchReport report("e8_lower_bound");
  report.config("seed", 888.0);
  report.config("sim_seconds", 60.0);
  bool all_ok = true;
  for (const int n : {2, 4, 8}) {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = n;
    cfg.seed = 888;
    cfg.sync.fault_tolerance = 0;
    // Ideal oscillators isolate the epsilon-vs-precision relationship from
    // drift effects.
    cfg.osc_base = osc::OscConfig::ideal(10e6);
    cfg.osc_offset_spread_ppm = 0.0;
    cluster::Cluster cl(cfg);
    cl.start();

    // Ground-truth epsilon: spread of trigger-to-trigger delays observed
    // across all node pairs.
    SampleSet gaps;
    for (int i = 0; i < n; ++i) {
      auto prev = cl.node(i).driver().on_csp;
      auto* receiver = &cl.node(i);
      cl.node(i).driver().on_csp = [&, prev, receiver](const node::RxCsp& rx) {
        const SimTime tx_trig =
            cl.node(rx.src_node).comco().last_tx_trigger_time();
        gaps.add(receiver->comco().last_rx_trigger_time() - tx_trig);
        prev(rx);
      };
    }
    cl.run(Duration::sec(60), Duration::sec(20), Duration::ms(200));

    const Duration eps =
        Duration::ps(static_cast<std::int64_t>(gaps.max() - gaps.min()));
    const Duration bound = Duration::from_sec_f(
        eps.to_sec_f() * (1.0 - 1.0 / static_cast<double>(n)));
    const Duration achieved = cl.precision_samples().max_duration();
    const double ratio = achieved.to_sec_f() / std::max(1e-12, bound.to_sec_f());
    std::printf("  %-4d %-12s %-14s %-14s %-8.2f\n", n, eps.str().c_str(),
                bound.str().c_str(), achieved.str().c_str(), ratio);
    // Same order as the floor: not far above (the algorithm leaves little
    // on the table), not implausibly below (a typical run can undershoot
    // the adversarial bound, but not by much once granularity ~4G is in).
    const Duration slack = bound + Duration::ns(60) * 4;
    if (achieved > slack * 8) all_ok = false;
    if (achieved < bound / 4) all_ok = false;

    const std::string key = "n" + std::to_string(n);
    report.metric(key + "_epsilon", eps);
    report.metric(key + "_ll_bound", bound);
    report.metric(key + "_precision_max", achieved);
    report.metric(key + "_ratio", ratio);
  }
  bench::verdict(all_ok,
                 "achieved precision is the same order as the [LL84] floor "
                 "(typical-case max vs adversarial worst-case bound)");
  report.pass(all_ok);
  report.write();
  return all_ok ? 0 : 1;
}
