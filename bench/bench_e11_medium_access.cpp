// E11: medium-access uncertainty on a shared broadcast channel
// (paper Secs. 1 and 3.1).
//
// "The medium access uncertainty ... can be quite large for any network
// utilizing a shared medium."  The bench sweeps offered background load
// and measures (a) the transmit-request -> wire-start delay distribution
// (what a software timestamp at step 1 eats in full), and (b) the
// hardware trigger epsilon on the same packets (which must stay flat):
// the core architectural argument for DMA-trigger timestamping.
#include <vector>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

int main() {
  bench::header("E11: medium-access uncertainty vs channel load",
                "software stamping absorbs MAC delays; NTI triggers do not");

  std::printf("  %-8s %-34s %-14s %s\n", "load", "MAC wait (p50 / p99 / max)",
              "hw epsilon", "collisions");
  bench::BenchReport report("e11_medium_access");
  report.config("csps", 2000.0);
  report.config("sim_seconds", 11.0);
  bool hw_flat = true;
  Duration hw_eps_low, hw_eps_high;
  for (const double load : {0.0, 0.2, 0.4, 0.6}) {
    sim::Engine engine;
    RngStream root(11);
    net::Medium medium(engine, net::MediumConfig{}, root.fork("m"));
    node::NodeConfig c0;
    c0.node_id = 0;
    c0.osc = osc::OscConfig::ideal(10e6);
    node::NodeConfig c1 = c0;
    c1.node_id = 1;
    node::NodeCard a(engine, medium, c0, root);
    node::NodeCard b(engine, medium, c1, root);
    std::unique_ptr<net::TrafficGenerator> gen;
    if (load > 0) {
      net::TrafficConfig tc;
      tc.offered_load = load;
      gen = std::make_unique<net::TrafficGenerator>(engine, medium, tc,
                                                    root.fork("t"));
    }

    // Measure request->wire delay via a chained wire-start hook.
    SampleSet mac_wait, hw_gap;
    SimTime request_time;
    auto prev_ws = a.comco().port().on_wire_start;
    a.comco().port().on_wire_start =
        [&, prev_ws](SimTime ws, const std::shared_ptr<net::Frame>& fr) {
          mac_wait.add(ws - request_time);
          prev_ws(ws, fr);
        };
    b.driver().on_csp = [&](const node::RxCsp& rx) {
      // Stamp pair, not raw trigger probes: with background frames on the
      // wire the last-trigger instants belong to *some* frame, while the
      // SSU/Receive-Header-Base machinery pairs stamps per packet.
      if (rx.rx_stamp_valid && rx.tx_stamp.checksum_ok) {
        hw_gap.add(rx.rx_stamp.time() - rx.tx_stamp.time());
      }
    };

    for (int i = 0; i < 2000; ++i) {
      engine.schedule_at(SimTime::epoch() + Duration::ms(5) * i, [&] {
        request_time = engine.now();
        csa::CspPayload p;
        a.driver().send_csp(p.encode());
      });
    }
    // Bounded horizon: the background generator never stops by itself.
    engine.run_until(SimTime::epoch() + Duration::sec(11));

    const Duration eps =
        Duration::ps(static_cast<std::int64_t>(hw_gap.max() - hw_gap.min()));
    char waits[96];
    std::snprintf(waits, sizeof waits, "%s / %s / %s",
                  mac_wait.percentile_duration(50).str().c_str(),
                  mac_wait.percentile_duration(99).str().c_str(),
                  mac_wait.max_duration().str().c_str());
    std::printf("  %-8.1f %-34s %-14s %llu\n", load, waits, eps.str().c_str(),
                static_cast<unsigned long long>(medium.collisions()));
    char key[48];
    std::snprintf(key, sizeof key, "load%02d", static_cast<int>(load * 100));
    report.metric(std::string(key) + "_hw_epsilon", eps);
    report.metric(std::string(key) + "_mac_wait_p99",
                  mac_wait.percentile_duration(99));
    report.metric(std::string(key) + "_collisions", medium.collisions());
    report.metric(std::string(key) + "_frames_delivered", medium.frames_delivered());
    report.metric(std::string(key) + "_tx_aborts", medium.tx_aborts());
    if (load == 0.0) hw_eps_low = eps;
    if (load == 0.6) {
      hw_eps_high = eps;
      // MAC wait p99 must have grown into the multi-100us..ms regime.
      if (mac_wait.percentile_duration(99) < Duration::us(200)) hw_flat = false;
    }
  }
  // The hardware epsilon must be load-insensitive (same sub-us band).
  if (hw_eps_high > hw_eps_low * 2 + Duration::ns(100)) hw_flat = false;
  bench::verdict(hw_flat,
                 "MAC wait explodes with load while trigger epsilon stays sub-us");
  report.metric("hw_epsilon_flat", hw_flat ? 1.0 : 0.0);
  report.pass(hw_flat);
  report.write();
  return hw_flat ? 0 : 1;
}
