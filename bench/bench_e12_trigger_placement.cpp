// E12: trigger placement and COMCO architectural effects (paper Sec. 3.1).
//
// "Whereas adjusting the trigger position of the transmit/receive
// timestamp may help in reducing/circumventing certain impairments, it is
// nevertheless not easy to find and justify a suitable choice without
// actual measurements."  And Sec. 5: the NTI provides "two independently
// configurable addresses for timestamp triggering and transparent mapping".
//
// Part 1 sweeps the COMCO's architectural jitter knobs (TX FIFO lead
// jitter, RX bus-arbitration jitter) and shows measured epsilon ~ their
// sum -- the measurement a designer needs to pick trigger offsets.
// Part 2 demonstrates functionally that trigger and mapping offsets are
// independently reprogrammable in the CPLD and that stamps still flow.
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

Duration measure_epsilon(Duration tx_jitter, Duration rx_jitter,
                         bench::BenchReport* rep = nullptr) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.seed = 12;
  cfg.comco.fifo_lead_jitter = tx_jitter;
  cfg.comco.rx_arb_jitter = rx_jitter;
  cfg.sync.round_period = Duration::ms(100);
  cfg.sync.resync_offset = Duration::ms(50);
  if (rep != nullptr) {
    // Default-jitter case only: record CSP lifecycle spans so the report
    // carries the per-stage latency histograms and a Perfetto trace of the
    // trigger placement under measurement.
    cfg.enable_spans = true;
    cfg.span_max_events = 20'000;
  }
  cluster::Cluster cl(cfg);
  cl.start();
  SampleSet gaps;
  auto prev = cl.node(1).driver().on_csp;
  cl.node(1).driver().on_csp = [&, prev](const node::RxCsp& rx) {
    gaps.add(cl.node(1).comco().last_rx_trigger_time() -
             cl.node(0).comco().last_tx_trigger_time());
    prev(rx);
  };
  cl.engine().run_until(SimTime::epoch() + Duration::sec(60));
  if (rep != nullptr) {
    rep->from_registry(cl.metrics());
    obs::write_chrome_trace("TRACE_e12_trigger_placement.json", *cl.spans());
  }
  return Duration::ps(static_cast<std::int64_t>(gaps.max() - gaps.min()));
}

}  // namespace

int main() {
  bench::header("E12: trigger placement / COMCO jitter ablation",
                "epsilon is set by FIFO + arbitration jitter; offsets are "
                "independently programmable");

  std::printf("  %-22s %-22s %-12s %s\n", "TX FIFO jitter", "RX arb jitter",
              "epsilon", "budget (sum)");
  struct Case {
    Duration tx, rx;
  };
  const Case cases[] = {
      {Duration::ns(0), Duration::ns(0)},
      {Duration::ns(150), Duration::ns(0)},
      {Duration::ns(0), Duration::ns(250)},
      {Duration::ns(150), Duration::ns(250)},
      {Duration::ns(600), Duration::ns(900)},
  };
  bench::BenchReport report("e12_trigger_placement");
  report.config("num_nodes", 2.0);
  report.config("seed", 12.0);
  bool additive_ok = true;
  for (const auto& c : cases) {
    // Trace the default-jitter case (the one E1 runs with) in depth.
    const bool traced =
        c.tx == Duration::ns(150) && c.rx == Duration::ns(250);
    const Duration eps = measure_epsilon(c.tx, c.rx, traced ? &report : nullptr);
    const Duration budget = c.tx + c.rx;
    std::printf("  %-22s %-22s %-12s %s\n", c.tx.str().c_str(),
                c.rx.str().c_str(), eps.str().c_str(), budget.str().c_str());
    char key[64];
    std::snprintf(key, sizeof key, "eps_tx%lld_rx%lld",
                  static_cast<long long>(c.tx.count_ps() / 1000),
                  static_cast<long long>(c.rx.count_ps() / 1000));
    report.metric(key, eps);
    if (eps > budget + Duration::ns(1)) additive_ok = false;       // never exceeds
    if (budget > Duration::ns(100) && eps < budget / 3) additive_ok = false;
  }

  // Part 2: reprogram the CPLD offsets and verify stamps still flow.
  bool remap_ok = true;
  {
    sim::Engine engine;
    osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(3));
    utcsu::Utcsu chip(engine, osc, utcsu::UtcsuConfig{});
    module::CpldProgram prog;
    prog.tx_trigger_offset = 0x10;   // trigger earlier in the header
    prog.tx_map_timestamp = 0x24;    // map into the "unused" words instead
    prog.tx_map_macrostamp = 0x28;
    prog.tx_map_alpha = 0x2C;
    prog.rx_trigger_offset = 0x0C;   // stamp on the ethertype word
    module::Nti nti(chip, prog);
    const SimTime t = SimTime::epoch() + Duration::us(10);
    (void)nti.comco_read32(t, module::Nti::tx_header_addr(0) + 0x10);
    const std::uint32_t ts = nti.comco_read32(t, module::Nti::tx_header_addr(0) + 0x24);
    const std::uint32_t macro = nti.comco_read32(t, module::Nti::tx_header_addr(0) + 0x28);
    remap_ok &= chip.ssu_tx(0).valid;
    remap_ok &= utcsu::decode_stamp(ts, macro, 0).checksum_ok;
    nti.comco_write32(t, module::Nti::rx_header_addr(0) + 0x0C, 0);
    remap_ok &= chip.ssu_rx(0).valid;
  }
  bench::row("CPLD reprogramming (trigger 0x10/0x0C, map 0x24..)",
             remap_ok ? "stamps flow" : "FAILED");

  bench::verdict(additive_ok && remap_ok,
                 "epsilon tracks the jitter budget; offsets reprogrammable");
  report.metric("additive_ok", additive_ok ? 1.0 : 0.0);
  report.metric("remap_ok", remap_ok ? 1.0 : 0.0);
  report.pass(additive_ok && remap_ok);
  report.write();
  return (additive_ok && remap_ok) ? 0 : 1;
}
