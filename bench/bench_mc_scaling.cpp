// MC scaling: replicas/sec of the Monte-Carlo runner vs thread count.
//
// The ROADMAP's north star says campaigns should run "as fast as the
// hardware allows": N independent replicas are embarrassingly parallel, so
// replicas/sec should scale near-linearly with the thread count until the
// core count is exhausted.  This bench runs a fixed 4-node scenario at 1,
// 2, 4 and hardware-concurrency threads, reports replicas/sec for each
// (into BENCH_mc_scaling.json, so the speedup rides the perf trajectory),
// and cross-checks the determinism contract: the ensemble JSON must be
// byte-identical across every thread count.
//
// On machines with fewer than 4 cores the speedup target is reported but
// not enforced (time-sliced threads cannot beat sequential execution); the
// byte-identity check is enforced everywhere.
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

mc::EnsembleResult run_at(std::size_t threads, std::size_t replicas) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.sync.fault_tolerance = 1;

  mc::McConfig mcc;
  mcc.replicas = replicas;
  mcc.threads = threads;
  mcc.root_seed = 4242;
  mcc.total = Duration::sec(60);
  mcc.warmup = Duration::sec(10);
  mcc.probe_period = Duration::ms(100);
  mcc.keep_trajectories = false;
  return mc::Runner(cfg, mcc).run();
}

}  // namespace

int main() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t replicas =
      mc::apply_env({}).replicas;  // NTI_MC_REPLICAS still applies

  bench::header("MC scaling: replicas/sec vs thread count",
                "independent replicas saturate all cores; output "
                "byte-identical for any thread count");

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  bench::BenchReport report("mc_scaling");
  report.config("num_nodes", 4.0);
  report.config("root_seed", 4242.0);
  report.config("replicas", static_cast<double>(replicas));
  report.config("hardware_concurrency", static_cast<double>(hw));

  std::string reference_json;
  bool bytes_identical = true;
  double rps_1 = 0.0, rps_4 = 0.0;
  for (const std::size_t t : thread_counts) {
    const mc::EnsembleResult ens = run_at(t, replicas);
    if (t == 1) {
      rps_1 = ens.replicas_per_sec;
      reference_json = ens.to_json();
    } else if (ens.to_json() != reference_json) {
      bytes_identical = false;
    }
    if (t == 4) rps_4 = ens.replicas_per_sec;
    char buf[128];
    std::snprintf(buf, sizeof buf, "%.2f replicas/sec (%.2fs wall)",
                  ens.replicas_per_sec, ens.wall_seconds);
    bench::row(("threads = " + std::to_string(t)).c_str(), buf);
    report.metric("replicas_per_sec_t" + std::to_string(t),
                  ens.replicas_per_sec);
  }

  const double speedup_4v1 = rps_1 > 0.0 ? rps_4 / rps_1 : 0.0;
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2fx (target >= 2.5x on >= 4 cores)",
                speedup_4v1);
  bench::row("speedup 4 threads vs 1", buf);
  bench::row("ensemble JSON byte-identical",
             bytes_identical ? "yes (all thread counts)" : "NO -- determinism bug");

  const bool scaling_ok = hw < 4 || speedup_4v1 >= 2.5;
  if (hw < 4) {
    bench::row("scaling target", "skipped: fewer than 4 hardware threads");
  }
  const bool ok = bytes_identical && scaling_ok;
  bench::verdict(ok, "parallel replication scales and stays deterministic");

  report.metric("speedup_4v1", speedup_4v1);
  report.metric("bytes_identical", bytes_identical ? std::uint64_t{1} : std::uint64_t{0});
  report.metric("scaling_enforced", hw >= 4 ? std::uint64_t{1} : std::uint64_t{0});
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
