// E15: partition resilience of the sharded topology (docs/FAULTS.md,
// docs/SHARDING.md).
//
// Three measurements on gateway-partitioned multi-segment topologies:
//   1. the partition matrix: topology shape (chain / tree / mesh) x outage
//      duration (short / long), each cell cutting link 0 with a
//      gateway_partition fault.  Per cell: containment violations (must be
//      zero -- deteriorating the bound instead of freezing it is the whole
//      point), peak holdover alpha, holdover rounds, and rounds-to-resync
//      after heal (bounded by rejoin_rounds + capture phase);
//   2. the deterioration law: short and long outages share every byte of
//      pre-cut history (same seed, same grid), so the peak-alpha
//      difference between them is a pure measurement of the holdover
//      widening rate.  It must match the analytic rho * delta-t slope --
//      the ACU law the guard implements -- within quantization and
//      check-phase margin;
//   3. the determinism cross-check: a chain with an ACTIVE fault plan
//      (stochastic capsule loss + corruption + a partition window) must
//      produce a byte-identical output signature across shard counts
//      {1, 2, 4} x NTI_MC_THREADS {1, 2, 4} -- faults, holdover and
//      rejoin transitions included.
//
// The PROF_ZONE attribution of the capsule tap (fault.capsule.tx / rx) and
// the shard scheduler (sim.shard.*) is captured from the long-chain cell
// into the report's `prof` section and PROF_e15_partition_resilience.json.
//
// `--smoke` shrinks segment populations and the identity horizon for the
// CI resilience gate (ctest -L resilience); metric keys are identical in
// both modes so the bench-delta baseline stays comparable.
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

constexpr std::uint64_t kSeed = 1515;
const Duration kRound = Duration::ms(200);
const SimTime kEpoch = SimTime::epoch();
// Converged-link bound budget for the absolute peak-alpha check: the alpha
// carried by the last accepted capsule before the cut (link alpha plus the
// fold-in terms, ~46-52 us across the matrix) stays under this at these
// horizons; everything above it must come from the rho * delta-t
// deterioration itself.  The precise rate check is the slope ratio below;
// this cap only rules out gross misbehaviour (a frozen or runaway bound).
const Duration kAlphaBudget = Duration::us(60);

cluster::ClusterConfig cell_config(cluster::TopologySpec topo) {
  cluster::ClusterConfig cfg;
  cfg.seed = kSeed;
  cfg.sync.round_period = kRound;
  cfg.sync.resync_offset = Duration::ms(50);
  cfg.initial_offset_spread = Duration::us(100);
  cfg.trace_capacity = 32768;
  cfg.topology = std::move(topo);
  cfg.topology.bridge_phase = Duration::ms(60);
  cfg.topology.shards = static_cast<std::size_t>(cfg.topology.num_segments());
  cfg.topology.threads = 0;  // NTI_MC_THREADS, then hardware
  return cfg;
}

struct CellResult {
  std::uint64_t violations = 0;
  std::uint64_t holdover_rounds = 0;
  std::uint64_t holdover_offers = 0;
  std::uint64_t accuracy_broken = 0;
  Duration peak_alpha;
  bool resynced = false;
  double rounds_to_resync = 0.0;
};

CellResult run_cell(cluster::TopologySpec topo, Duration outage,
                    bool profiled) {
  cluster::ClusterConfig cfg = cell_config(std::move(topo));
  const SimTime cut = kEpoch + Duration::ms(1000);
  const SimTime heal = cut + outage;
  cfg.faults.add(fault::FaultSpec::gateway_partition(/*link=*/0, cut, heal));
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  if (profiled) {
    obs::prof::reset();
    obs::prof::set_enabled(true);
  }
  // Heal + 1.4 s leaves the guard time to walk REJOINING back to
  // SYNCHRONIZED and prove a few clean rounds.
  sc.run(outage + Duration::ms(2400), Duration::ms(400), Duration::ms(100));
  if (profiled) obs::prof::set_enabled(false);

  cluster::GatewayLinkRx& rx = sc.gateway_rx(0);
  const node::GatewayGuard& guard = rx.guard();
  CellResult r;
  r.violations = sc.containment_violations();
  r.holdover_rounds = guard.holdover_rounds();
  r.holdover_offers = rx.holdover_offers();
  r.accuracy_broken = guard.accuracy_broken();
  r.peak_alpha = guard.peak_holdover_alpha();
  r.resynced = guard.state() == node::GatewayState::kSynchronized &&
               rx.last_sync_time() > heal;
  if (r.resynced) {
    r.rounds_to_resync =
        static_cast<double>((rx.last_sync_time() - heal).count_ps()) /
        static_cast<double>(kRound.count_ps());
  }
  return r;
}

std::string identity_signature(std::size_t shards, bool smoke) {
  cluster::ClusterConfig cfg;
  cfg.seed = kSeed;
  cfg.sync.round_period = kRound;
  cfg.sync.resync_offset = Duration::ms(50);
  cfg.initial_offset_spread = Duration::us(100);
  cfg.trace_capacity = 8192;
  cfg.topology = cluster::TopologySpec::chain(4, 3, Duration::ms(1));
  cfg.topology.bridge_phase = Duration::ms(60);
  cfg.topology.shards = shards;
  cfg.topology.threads = 0;  // NTI_MC_THREADS, then hardware
  cfg.faults.add(fault::FaultSpec::gateway_capsule_loss(0.3))
      .add(fault::FaultSpec::capsule_corrupt(0.2, /*link=*/1))
      .add(fault::FaultSpec::gateway_partition(
          0, kEpoch + Duration::ms(800), kEpoch + Duration::ms(1400)));
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  sc.run(smoke ? Duration::ms(1600) : Duration::ms(2400), Duration::ms(300),
         Duration::ms(100));
  return sc.output_signature();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bench::header(
      "E15: partition resilience (gateway holdover state machine)",
      "on synchronization loss the bound deteriorates at rho per elapsed "
      "tick (the ACU law) instead of lying; containment holds through "
      "partition, holdover and rejoin");

  const int nodes_per_segment = smoke ? 3 : 4;
  const Duration lat = Duration::ms(1);
  const Duration short_outage = Duration::ms(800);
  const Duration long_outage = Duration::ms(1600);
  const double rho_ppm = cluster::ClusterConfig{}.sync.rho_bound_ppm;

  bench::BenchReport report("e15_partition_resilience");
  report.manifest_seed(kSeed);
  report.config("smoke", smoke ? 1.0 : 0.0);
  report.config("nodes_per_segment", static_cast<double>(nodes_per_segment));
  report.config("round_period", kRound);
  report.config("rho_ppm", rho_ppm);
  report.config("short_outage", short_outage);
  report.config("long_outage", long_outage);

  struct Shape {
    const char* name;
    cluster::TopologySpec topo;
  };
  const std::vector<Shape> shapes = {
      {"chain", cluster::TopologySpec::chain(3, nodes_per_segment, lat)},
      {"tree", cluster::TopologySpec::tree(2, 1, nodes_per_segment, lat)},
      {"mesh", cluster::TopologySpec::mesh(3, nodes_per_segment, lat)},
  };

  // --- partition matrix: shape x outage duration -------------------------
  std::uint64_t total_violations = 0;
  bool holdover_within_bound = true;
  bool resync_bounded = true;
  for (const Shape& shape : shapes) {
    Duration peak[2];
    for (int d = 0; d < 2; ++d) {
      const Duration outage = d == 0 ? short_outage : long_outage;
      const char* dur = d == 0 ? "short" : "long";
      // The long chain cell doubles as the profiled run (sim.shard.* +
      // fault.capsule.* zone attribution).
      const bool profiled =
          d == 1 && std::strcmp(shape.name, "chain") == 0;
      const CellResult r = run_cell(shape.topo, outage, profiled);
      if (profiled) {
        report.prof_zones(obs::prof::snapshot());
        bench::write_prof_json("e15_partition_resilience",
                               obs::prof::snapshot(), kSeed,
                               static_cast<std::size_t>(
                                   shape.topo.num_segments()));
      }
      peak[d] = r.peak_alpha;
      total_violations += r.violations;

      // Absolute sanity: the peak bound is the converged-link budget plus
      // the analytic deterioration over the outage (the last accept can
      // predate the cut by up to a capture period, and the last holdover
      // check can trail the heal by one more).
      const Duration analytic =
          Duration::ps(static_cast<std::int64_t>(
              rho_ppm * 1e-6 *
              static_cast<double>((outage + kRound * 2).count_ps())));
      const bool cell_ok = r.violations == 0 && r.holdover_rounds > 0 &&
                           r.accuracy_broken == 0 &&
                           r.peak_alpha > Duration::zero() &&
                           r.peak_alpha <= kAlphaBudget + analytic;
      holdover_within_bound = holdover_within_bound && cell_ok;
      // Resync after heal within rejoin_rounds + capture/check phase.
      const bool cell_resync =
          r.resynced && r.rounds_to_resync > 0.0 &&
          r.rounds_to_resync <=
              static_cast<double>(shape.topo.rejoin_rounds + 2);
      resync_bounded = resync_bounded && cell_resync;

      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "peak alpha %.3g us (cap %.3g)  resync %.2f rounds  "
                    "%llu holdover rounds  %llu violations",
                    r.peak_alpha.to_us_f(),
                    (kAlphaBudget + analytic).to_us_f(), r.rounds_to_resync,
                    static_cast<unsigned long long>(r.holdover_rounds),
                    static_cast<unsigned long long>(r.violations));
      bench::row((std::string(shape.name) + " / " + dur + " outage").c_str(),
                 buf);
      const std::string key = std::string(shape.name) + "_" + dur;
      report.metric(key + "_peak_holdover_alpha", r.peak_alpha);
      report.metric(key + "_rounds_to_resync", r.rounds_to_resync);
      report.metric(key + "_holdover_rounds", r.holdover_rounds);
      report.metric(key + "_holdover_offers", r.holdover_offers);
      report.metric(key + "_violations", r.violations);
    }

    // The deterioration slope: both runs share the pre-cut byte history,
    // so peak_long - peak_short isolates rho * (long - short).  Margin
    // covers AlphaUnits round-up and one check-grid phase slip.
    const double measured_us = (peak[1] - peak[0]).to_us_f();
    const double analytic_us =
        rho_ppm * 1e-6 * (long_outage - short_outage).to_us_f();
    const double ratio = analytic_us > 0.0 ? measured_us / analytic_us : 0.0;
    const bool slope_ok = ratio >= 0.5 && ratio <= 1.5;
    holdover_within_bound = holdover_within_bound && slope_ok;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "measured %.3g us vs analytic rho*dt %.3g us (ratio %.2f)",
                  measured_us, analytic_us, ratio);
    bench::row((std::string(shape.name) + " alpha growth").c_str(), buf);
    report.metric(std::string(shape.name) + "_alpha_growth_measured_us",
                  measured_us);
    report.metric(std::string(shape.name) + "_alpha_growth_analytic_us",
                  analytic_us);
    report.metric(std::string(shape.name) + "_alpha_slope_ratio", ratio);
  }
  bench::row("containment violations (all cells)",
             std::to_string(total_violations));

  // --- byte identity under an active fault plan --------------------------
  const char* saved_threads = std::getenv("NTI_MC_THREADS");
  const std::string saved =
      saved_threads != nullptr ? saved_threads : std::string();
  std::string reference;
  bool bytes_identical = true;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const char* threads : {"1", "2", "4"}) {
      setenv("NTI_MC_THREADS", threads, 1);
      const std::string sig = identity_signature(shards, smoke);
      if (reference.empty()) {
        reference = sig;
      } else if (sig != reference) {
        bytes_identical = false;
      }
    }
  }
  if (saved_threads != nullptr) {
    setenv("NTI_MC_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("NTI_MC_THREADS");
  }
  bench::row("faulted output byte-identical",
             bytes_identical
                 ? "yes (shards {1,2,4} x threads {1,2,4}, plan active)"
                 : "NO -- fault injection broke shard determinism");

  const bool ok = total_violations == 0 && holdover_within_bound &&
                  resync_bounded && bytes_identical;
  bench::verdict(ok,
                 "partitioned gateways degrade loudly at the analytic rate "
                 "and re-integrate deterministically");

  report.metric("containment_violations", total_violations);
  report.metric("holdover_within_bound",
                holdover_within_bound ? std::uint64_t{1} : std::uint64_t{0});
  report.metric("resync_bounded",
                resync_bounded ? std::uint64_t{1} : std::uint64_t{0});
  report.metric("bytes_identical",
                bytes_identical ? std::uint64_t{1} : std::uint64_t{0});
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
