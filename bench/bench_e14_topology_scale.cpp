// E14: topology scale on the sharded event engine (docs/SHARDING.md).
//
// Three measurements on multi-segment topologies:
//   1. events/sec vs shard count on a 1,024-node chain (32 segments x 32
//      nodes) at 1, 2 and 4 shards -- the sharded engine should reach >= 2x
//      the single-shard event rate at 4 shards on a >= 4-core machine
//      (enforced there; reported-only on smaller runners, like
//      bench_mc_scaling's honest skip);
//   2. the determinism cross-check: the full output signature (probe
//      trajectory + per-segment metrics) must be byte-identical for every
//      shard count -- the differential/matrix tests pin this at unit scale,
//      this bench re-pins it at 1,024 nodes;
//   3. precision vs graph diameter: chains of 2/4/8 segments, where time
//      diffuses one gateway hop per round, so global precision degrades
//      with hop distance from the reference segment (the trade the paper's
//      single-LAN design avoids and Pabico's ad-hoc networks accept).
//
// The PROF_ZONE attribution of the shard scheduler (sim.shard.drain /
// horizon / advance / handoff) is captured from the 4-shard scale run into
// the report's `prof` section and PROF_e14_topology_scale.json.
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

struct ScaleResult {
  std::string signature;
  std::uint64_t events = 0;
  std::uint64_t cross_handoffs = 0;
  double wall_seconds = 0.0;
};

cluster::ClusterConfig scale_config() {
  cluster::ClusterConfig cfg;
  cfg.seed = 1414;
  // 32 segments x 32 nodes = 1,024 nodes.  5 ms gateway latency = 5 ms of
  // conservative lookahead per round, so shards advance in chunky windows.
  cfg.topology = cluster::TopologySpec::chain(32, 32, Duration::ms(5));
  return cfg;
}

ScaleResult run_scale(std::size_t shards, bool profiled) {
  cluster::ClusterConfig cfg = scale_config();
  cfg.topology.shards = shards;
  cfg.topology.threads = shards;
  cluster::ShardedCluster sc(std::move(cfg));
  sc.start();
  if (profiled) {
    obs::prof::reset();
    obs::prof::set_enabled(true);
  }
  const auto wall_start = std::chrono::steady_clock::now();
  sc.run(Duration::sec(3), Duration::sec(1), Duration::ms(200));
  const auto wall_end = std::chrono::steady_clock::now();
  if (profiled) obs::prof::set_enabled(false);

  ScaleResult r;
  r.signature = sc.output_signature();
  r.events = sc.total_events();
  r.cross_handoffs = sc.group().cross_shard_handoffs();
  r.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  return r;
}

struct DiameterResult {
  int diameter = 0;
  int nodes = 0;
  SampleSummary precision;
  std::uint64_t violations = 0;
};

DiameterResult run_diameter(int segments) {
  cluster::ClusterConfig cfg;
  cfg.seed = 77;
  cfg.topology = cluster::TopologySpec::chain(segments, 8, Duration::ms(1));
  cfg.topology.shards = static_cast<std::size_t>(segments);
  cfg.topology.threads = 0;  // NTI_MC_THREADS, then hardware
  cluster::ShardedCluster sc(std::move(cfg));

  DiameterResult r;
  sc.start();
  sc.run(Duration::sec(8), Duration::sec(3));
  r.diameter = segments - 1;  // chain diameter
  r.nodes = segments * 8;
  r.precision = sc.precision_samples().summary();
  r.violations = sc.containment_violations();
  return r;
}

}  // namespace

int main() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  bench::header(
      "E14: multi-segment topology scale (sharded event engine)",
      "shards scale events/sec on 1,000+-node topologies with "
      "byte-identical output; precision degrades with graph diameter");

  bench::BenchReport report("e14_topology_scale");
  report.manifest_seed(1414);
  report.config("segments", 32.0);
  report.config("nodes_per_segment", 32.0);
  report.config("total_nodes", 1024.0);
  report.config("gateway_latency_us", 5000.0);
  report.config("hardware_concurrency", static_cast<double>(hw));

  // --- events/sec vs shard count -----------------------------------------
  std::string reference_signature;
  bool bytes_identical = true;
  double wall_1 = 0.0, wall_4 = 0.0;
  double rate_1 = 0.0, rate_4 = 0.0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const bool profiled = shards == 4;
    const ScaleResult r = run_scale(shards, profiled);
    const double rate = r.wall_seconds > 0.0
                            ? static_cast<double>(r.events) / r.wall_seconds
                            : 0.0;
    if (shards == 1) {
      reference_signature = r.signature;
      wall_1 = r.wall_seconds;
      rate_1 = rate;
    } else if (r.signature != reference_signature) {
      bytes_identical = false;
    }
    if (shards == 4) {
      wall_4 = r.wall_seconds;
      rate_4 = rate;
      report.prof_zones(obs::prof::snapshot());
      bench::write_prof_json("e14_topology_scale", obs::prof::snapshot(),
                             1414, shards);
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%.3g events/sec (%.2fs wall, %llu events, %llu handoffs)",
                  rate, r.wall_seconds,
                  static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.cross_handoffs));
    bench::row(("shards = " + std::to_string(shards)).c_str(), buf);
    report.metric("events_per_sec_s" + std::to_string(shards), rate);
    report.metric("wall_seconds_s" + std::to_string(shards), r.wall_seconds);
    report.metric("cross_handoffs_s" + std::to_string(shards),
                  r.cross_handoffs);
  }

  const double speedup = wall_4 > 0.0 ? wall_1 / wall_4 : 0.0;
  {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%.2fx wall (%.3g -> %.3g ev/s; target >= 2x)",
                  speedup, rate_1, rate_4);
    bench::row("speedup 4 shards vs 1", buf);
  }
  bench::row("output byte-identical",
             bytes_identical ? "yes (1,024 nodes, all shard counts)"
                             : "NO -- determinism bug");

  // --- precision vs graph diameter ---------------------------------------
  std::uint64_t total_violations = 0;
  std::vector<double> p50_by_diam;
  for (const int segments : {2, 4, 8}) {
    const DiameterResult d = run_diameter(segments);
    total_violations += d.violations;
    p50_by_diam.push_back(d.precision.p50);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "pi p50 %.3g us  max %.3g us  (%d nodes, %llu violations)",
                  d.precision.p50 * 1e-6, d.precision.max * 1e-6, d.nodes,
                  static_cast<unsigned long long>(d.violations));
    bench::row(("chain diameter = " + std::to_string(d.diameter)).c_str(), buf);
    const std::string key = "precision_diam" + std::to_string(d.diameter);
    report.metric(key + "_p50_us", d.precision.p50 * 1e-6);
    report.metric(key + "_max_us", d.precision.max * 1e-6);
    report.metric(key + "_violations", d.violations);
  }
  const bool diameter_trend =
      p50_by_diam.size() == 3 && p50_by_diam.front() <= p50_by_diam.back();
  bench::row("precision degrades with diameter",
             diameter_trend ? "yes (p50 diam1 <= p50 diam7)" : "no (flat/noisy)");

  const bool scaling_ok = hw < 4 || speedup >= 2.0;
  if (hw < 4) {
    bench::row("scaling target", "skipped: fewer than 4 hardware threads");
  }
  const bool ok = bytes_identical && scaling_ok && total_violations == 0;
  bench::verdict(ok, "sharded topologies scale and stay byte-deterministic");

  report.metric("speedup_4v1", speedup);
  report.metric("bytes_identical",
                bytes_identical ? std::uint64_t{1} : std::uint64_t{0});
  report.metric("scaling_enforced",
                hw >= 4 ? std::uint64_t{1} : std::uint64_t{0});
  report.metric("diameter_trend",
                diameter_trend ? std::uint64_t{1} : std::uint64_t{0});
  report.metric("containment_violations", total_violations);
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
