// Reference path: the pre-slab discrete-event scheduler, kept verbatim so
// bench_throughput can report the slab/heap engine's speedup against the
// implementation it replaced (docs/PERFORMANCE.md).
//
// This is the shared_ptr design sim::Engine used before the indexed-heap
// rewrite: one make_shared<EventState> per scheduled event, a
// priority_queue of shared_ptrs ordered on (when, seq), weak_ptr handles,
// lazy cancellation reaped at pop time.  Semantics are identical to
// sim::Engine by construction -- same clamp-past-to-now, same FIFO
// tie-break, same run_until guard -- which the bench asserts by comparing
// executed-event counts on the same deterministic workload.
//
// Lives under bench/micro (not src/) deliberately: nti-lint's `alloc` rule
// forbids per-event make_shared in production scheduler code, and this
// file exists to stay slow.  Do not "optimize" it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time_types.hpp"

namespace nti::bench::legacy {

using EventFn = std::function<void()>;

namespace detail {
struct LegacyState {
  SimTime when;
  std::uint64_t seq = 0;
  EventFn fn;
  bool cancelled = false;
  bool fired = false;
};
}  // namespace detail

class LegacyEventHandle {
 public:
  LegacyEventHandle() = default;
  void cancel() {
    if (auto s = state_.lock()) s->cancelled = true;
  }
  bool pending() const {
    const auto s = state_.lock();
    return s && !s->cancelled && !s->fired;
  }

 private:
  friend class LegacyEngine;
  explicit LegacyEventHandle(std::weak_ptr<detail::LegacyState> s)
      : state_(std::move(s)) {}
  std::weak_ptr<detail::LegacyState> state_;
};

class LegacyEngine {
 public:
  LegacyEngine() = default;
  LegacyEngine(const LegacyEngine&) = delete;
  LegacyEngine& operator=(const LegacyEngine&) = delete;

  SimTime now() const { return now_; }

  LegacyEventHandle schedule_at(SimTime t, EventFn fn) {
    auto state = std::make_shared<detail::LegacyState>();
    state->when = (t < now_) ? now_ : t;
    state->seq = next_seq_++;
    state->fn = std::move(fn);
    queue_.push(state);
    ++live_;
    if (queue_.size() > queue_hwm_) queue_hwm_ = queue_.size();
    return LegacyEventHandle{state};
  }
  LegacyEventHandle schedule_in(Duration d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  bool step() {
    while (!queue_.empty()) {
      StatePtr s = queue_.top();
      queue_.pop();
      --live_;
      if (s->cancelled) {
        ++cancelled_reaped_;
        continue;
      }
      now_ = s->when;
      s->fired = true;
      ++executed_;
      EventFn fn = std::move(s->fn);
      fn();
      return true;
    }
    return false;
  }

  void run_until(SimTime limit) {
    for (;;) {
      reap_cancelled_heads();
      if (queue_.empty() || queue_.top()->when > limit) break;
      if (!step()) break;
    }
    if (now_ < limit) now_ = limit;
  }

  void run() {
    while (step()) {
    }
  }

  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_cancelled() const { return cancelled_reaped_; }
  std::size_t events_pending() const { return live_; }
  std::size_t queue_high_water() const { return queue_hwm_; }

 private:
  using StatePtr = std::shared_ptr<detail::LegacyState>;
  struct Compare {
    bool operator()(const StatePtr& a, const StatePtr& b) const {
      if (a->when != b->when) return a->when > b->when;  // min-heap on time
      return a->seq > b->seq;                            // FIFO among equals
    }
  };

  void reap_cancelled_heads() {
    while (!queue_.empty() && queue_.top()->cancelled) {
      queue_.pop();
      --live_;
      ++cancelled_reaped_;
    }
  }

  SimTime now_ = SimTime::epoch();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_reaped_ = 0;
  std::size_t live_ = 0;
  std::size_t queue_hwm_ = 0;
  std::priority_queue<StatePtr, std::vector<StatePtr>, Compare> queue_;
};

}  // namespace nti::bench::legacy
