// Throughput microbenchmarks: how fast does the simulator simulate?
//
// Three layers, one report (BENCH_throughput.json):
//
//   A. Scheduler: events/sec through the slab/indexed-heap sim::Engine vs
//      the pre-PR shared_ptr scheduler (bench/micro/legacy_engine.hpp, kept
//      verbatim as the reference path), on two synthetic no-op workloads:
//        - drain: batch-schedule events at random times into a warm engine,
//          then drain the queue.  Scheduler-dominant (this is where the
//          data structures differ), and the headline >= 3x acceptance gate.
//        - chain: self-rescheduling timer chains with ~10% schedule-then-
//          cancel churn, the simulator's realistic shape; reported, not
//          gated (per-event rng + closure overhead is shared by both
//          engines and dilutes the ratio -- see docs/PERFORMANCE.md).
//      Both run to an identical deterministic schedule on both engines
//      (executed counts must match exactly).
//
//   B. Cluster: CSPs/sec and engine events/sec on the paper's 16-node
//      prototype workload (4x MVME-162 with 4 NTIs each), full
//      observability on.  Together with the same row from an obs-off build
//      (`cmake --preset obs-off`; the JSON carries "obs_enabled" so the two
//      reports are never confused) this quantifies the observability tax
//      (docs/PERFORMANCE.md).
//
//   C. Ensemble: replicas/sec of the Monte-Carlo runner on the 16-node
//      workload at 1/2/4 threads, plus the determinism contract: the
//      ensemble JSON must be byte-identical across every thread count.
//
// `--smoke` shrinks horizons ~10x for the CI throughput gate (ctest -L
// throughput); the speedup floor drops to 1.5x there since short runs on a
// loaded CI box are noisy.  Wall-clock metrics make this JSON
// rerun-variable by nature (same stance as bench_mc_scaling); trend the
// ratios, not the absolute rates.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "legacy_engine.hpp"
#include "nti_api.hpp"
#include "obs/obs_build.hpp"

using namespace nti;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// A. Scheduler microbenchmark
// ---------------------------------------------------------------------------

/// Self-rescheduling timer chains: every firing draws the next delay from a
/// shared deterministic stream and re-arms, and every ~10th arm also
/// schedules a stray event and immediately cancels it (exercising the lazy
/// cancellation path).  Both engines fire events in identical (when, seq)
/// order, so the stream is consumed identically and the workloads match
/// event for event.
template <class EngineT, class HandleT>
class ChainWorkload {
 public:
  ChainWorkload(EngineT& eng, int chains)
      : eng_(eng), rng_(0x7117C0DEull), chains_(chains) {}

  void start() {
    for (int c = 0; c < chains_; ++c) arm();
  }
  std::uint64_t fired() const { return fired_; }

 private:
  void arm() {
    const Duration d = Duration::ps(rng_.uniform_int(1'000, 2'000'000));
    eng_.schedule_in(d, [this] {
      ++fired_;
      arm();
    });
    if (rng_.uniform_int(0, 9) == 0) {
      HandleT h = eng_.schedule_in(d, [this] { ++fired_; });
      h.cancel();
    }
  }

  EngineT& eng_;
  RngStream rng_;
  int chains_;
  std::uint64_t fired_ = 0;
};

template <class EngineT, class HandleT>
std::uint64_t run_chains(EngineT& eng, int chains, Duration horizon) {
  ChainWorkload<EngineT, HandleT> w(eng, chains);
  w.start();
  eng.run_until(SimTime::epoch() + horizon);
  return eng.events_executed();
}

struct SchedulerResult {
  double legacy_eps = 0.0;  ///< events/sec, reference path
  double slab_eps = 0.0;    ///< events/sec, sim::Engine
  std::uint64_t events = 0;
  bool counts_match = false;
};

SchedulerResult chain_bench(bool smoke) {
  const int kChains = 64;
  const Duration horizon = smoke ? Duration::ms(3) : Duration::ms(30);
  const int reps = smoke ? 2 : 3;

  SchedulerResult r;
  std::uint64_t legacy_events = 0, slab_events = 0;
  // Alternate the two paths so frequency scaling / cache warmth cannot
  // systematically favor whichever runs second; keep the best of each.
  for (int rep = 0; rep < reps; ++rep) {
    {
      bench::legacy::LegacyEngine eng;
      const auto t0 = std::chrono::steady_clock::now();
      legacy_events =
          run_chains<bench::legacy::LegacyEngine, bench::legacy::LegacyEventHandle>(
              eng, kChains, horizon);
      r.legacy_eps = std::max(
          r.legacy_eps, static_cast<double>(legacy_events) / seconds_since(t0));
    }
    {
      sim::Engine eng;
      const auto t0 = std::chrono::steady_clock::now();
      slab_events =
          run_chains<sim::Engine, sim::EventHandle>(eng, kChains, horizon);
      r.slab_eps = std::max(
          r.slab_eps, static_cast<double>(slab_events) / seconds_since(t0));
    }
  }
  r.events = slab_events;
  r.counts_match = legacy_events == slab_events;
  return r;
}

/// One timed drain round on a pre-warmed engine: N no-op events at
/// deterministic pseudo-random times, then run the queue dry.  The warm-up
/// round lets each engine reach its storage high-water mark first, so the
/// timed round measures steady-state scheduling (the regime every long
/// simulation runs in), not vector growth / allocator warm-up.
template <class EngineT>
double run_drain(EngineT& eng, int n, std::int64_t base_ps) {
  RngStream rng(0xD1A1Full);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    eng.schedule_at(
        SimTime::from_ps(base_ps + rng.uniform_int(0, 1'000'000'000)), [] {});
  }
  eng.run();
  return static_cast<double>(n) / seconds_since(t0);
}

SchedulerResult drain_bench(bool smoke) {
  const int n = smoke ? 400'000 : 1'000'000;
  const int reps = smoke ? 1 : 2;

  SchedulerResult r;
  bench::legacy::LegacyEngine legacy;
  sim::Engine slab;
  std::int64_t base = 0;
  run_drain(legacy, n, base);  // warm-up rounds, untimed
  run_drain(slab, n, base);
  for (int rep = 0; rep < reps; ++rep) {
    base += 2'000'000'000;
    r.legacy_eps = std::max(r.legacy_eps, run_drain(legacy, n, base));
    r.slab_eps = std::max(r.slab_eps, run_drain(slab, n, base));
  }
  r.events = static_cast<std::uint64_t>(n);
  r.counts_match = legacy.events_executed() == slab.events_executed();
  return r;
}

// ---------------------------------------------------------------------------
// B. 16-node cluster throughput (the paper's prototype workload)
// ---------------------------------------------------------------------------

cluster::ClusterConfig sixteen_node_cfg() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.sync.fault_tolerance = 2;
  cfg.sync.rho_bound_ppm = 3.0;  // same margin rationale as bench_e2
  return cfg;
}

struct ClusterResult {
  double csps_per_sec = 0.0;    ///< CSPs sent cluster-wide per wall second
  double events_per_sec = 0.0;  ///< engine events per wall second
  std::uint64_t csps = 0;
  std::uint64_t events = 0;
  double wall = 0.0;
  std::uint64_t trace_overwritten = 0;  ///< ring records lost to wraparound
  std::uint64_t span_dropped = 0;       ///< span events past the retention cap
};

ClusterResult cluster_bench(bool smoke, bool profiled) {
  cluster::ClusterConfig cfg = sixteen_node_cfg();
  // The default-build row carries the full observability stack the E2
  // experiment runs with; under NTI_OBS_OFF these same knobs compile to
  // no-ops, which is exactly the delta being measured.
  cfg.enable_spans = true;
  cfg.span_max_events = 50'000;
  cfg.trace_capacity = 4096;

  // The profiled run measures the PROF_ZONE tax against the identical
  // unprofiled run (docs/PERFORMANCE.md reports the delta; gate: <= 5%).
  if (profiled) {
    obs::prof::reset();
    obs::prof::set_enabled(true);
  }
  cluster::Cluster cl(cfg);
  cl.start();
  const Duration total = smoke ? Duration::sec(20) : Duration::sec(120);
  const auto t0 = std::chrono::steady_clock::now();
  cl.run(total, Duration::sec(5), Duration::ms(250));
  ClusterResult r;
  r.wall = seconds_since(t0);
  if (profiled) obs::prof::set_enabled(false);
  for (int i = 0; i < cl.size(); ++i)
    r.csps += cl.node(i).driver().stats().csp_sent;
  r.events = cl.engine().events_executed();
  r.csps_per_sec = static_cast<double>(r.csps) / r.wall;
  r.events_per_sec = static_cast<double>(r.events) / r.wall;
  if (cl.trace() != nullptr) r.trace_overwritten = cl.trace()->overwritten();
  if (cl.spans() != nullptr) r.span_dropped = cl.spans()->dropped_events();
  return r;
}

// ---------------------------------------------------------------------------
// C. Monte-Carlo replication throughput + byte-identity
// ---------------------------------------------------------------------------

mc::EnsembleResult mc_run_at(std::size_t threads, std::size_t replicas,
                             bool smoke) {
  mc::McConfig mcc;
  mcc.replicas = replicas;
  mcc.threads = threads;
  mcc.root_seed = 1616;
  mcc.total = smoke ? Duration::sec(20) : Duration::sec(60);
  mcc.warmup = Duration::sec(5);
  mcc.probe_period = Duration::ms(250);
  mcc.keep_trajectories = false;
  return mc::Runner(sixteen_node_cfg(), mcc).run();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  bench::header("Throughput: scheduler, 16-node cluster, MC ensemble",
                "simulation campaigns run as fast as the hardware allows "
                "(ROADMAP north star)");

  bench::BenchReport report("throughput");
  report.config("smoke", smoke ? 1.0 : 0.0);
  report.config("num_nodes", 16.0);
  report.config("root_seed", 1616.0);
  report.manifest_seed(1616);
  report.metric("obs_enabled", obs::kObsEnabled ? std::uint64_t{1}
                                                : std::uint64_t{0});

  // --- A: scheduler ---
  char buf[160];
  const SchedulerResult drain = drain_bench(smoke);
  const double speedup =
      drain.legacy_eps > 0.0 ? drain.slab_eps / drain.legacy_eps : 0.0;
  std::snprintf(buf, sizeof buf, "%.2fM events/sec (%llu events)",
                drain.legacy_eps * 1e-6,
                static_cast<unsigned long long>(drain.events));
  bench::row("drain: legacy shared_ptr engine", buf);
  std::snprintf(buf, sizeof buf, "%.2fM events/sec", drain.slab_eps * 1e-6);
  bench::row("drain: slab/indexed-heap engine", buf);
  const double speedup_floor = smoke ? 1.5 : 3.0;
  std::snprintf(buf, sizeof buf, "%.2fx (floor %.1fx)", speedup, speedup_floor);
  bench::row("drain speedup (the gate)", buf);

  const SchedulerResult chain = chain_bench(smoke);
  const double chain_speedup =
      chain.legacy_eps > 0.0 ? chain.slab_eps / chain.legacy_eps : 0.0;
  std::snprintf(buf, sizeof buf, "%.2fM events/sec (%llu events)",
                chain.legacy_eps * 1e-6,
                static_cast<unsigned long long>(chain.events));
  bench::row("chain: legacy shared_ptr engine", buf);
  std::snprintf(buf, sizeof buf, "%.2fM events/sec", chain.slab_eps * 1e-6);
  bench::row("chain: slab/indexed-heap engine", buf);
  std::snprintf(buf, sizeof buf, "%.2fx (reported, not gated)", chain_speedup);
  bench::row("chain speedup", buf);
  const bool counts_match = drain.counts_match && chain.counts_match;
  bench::row("identical event counts",
             counts_match ? "yes (both workloads)" : "NO -- semantics diverged");
  report.metric("scheduler_drain_legacy_events_per_sec", drain.legacy_eps);
  report.metric("scheduler_drain_slab_events_per_sec", drain.slab_eps);
  report.metric("scheduler_speedup", speedup);
  report.metric("scheduler_chain_legacy_events_per_sec", chain.legacy_eps);
  report.metric("scheduler_chain_slab_events_per_sec", chain.slab_eps);
  report.metric("scheduler_chain_speedup", chain_speedup);
  report.metric("scheduler_counts_match",
                counts_match ? std::uint64_t{1} : std::uint64_t{0});

  // --- B: 16-node cluster ---
  const ClusterResult cl = cluster_bench(smoke, /*profiled=*/false);
  std::snprintf(buf, sizeof buf, "%.0f CSPs/sec (%llu CSPs in %.2fs wall)",
                cl.csps_per_sec, static_cast<unsigned long long>(cl.csps),
                cl.wall);
  bench::row("16-node cluster CSP throughput", buf);
  std::snprintf(buf, sizeof buf, "%.2fM events/sec", cl.events_per_sec * 1e-6);
  bench::row("16-node cluster event throughput", buf);
  report.metric("csps_per_sec", cl.csps_per_sec);
  report.metric("cluster_events_per_sec", cl.events_per_sec);
  report.metric("cluster_csps", cl.csps);
  report.obs_metric("trace.overwritten", cl.trace_overwritten);
  report.obs_metric("span.events_dropped", cl.span_dropped);

  // --- B': same workload with profiler zones enabled ---
  // Where does the wall time go?  The zone rows land in the report's
  // `prof` section and PROF_throughput.json; the rate delta against the
  // unprofiled run above is the profiler's own tax.
  const ClusterResult clp = cluster_bench(smoke, /*profiled=*/true);
  const std::vector<obs::prof::ZoneStats> zones = obs::prof::snapshot();
  const double prof_overhead_pct =
      cl.events_per_sec > 0.0
          ? (1.0 - clp.events_per_sec / cl.events_per_sec) * 100.0
          : 0.0;
  std::snprintf(buf, sizeof buf, "%.2fM events/sec (overhead %.1f%%)",
                clp.events_per_sec * 1e-6, prof_overhead_pct);
  bench::row("16-node cluster, profiler on", buf);
  for (const auto& z : zones) {
    std::snprintf(buf, sizeof buf, "self %.0f us  total %.0f us  (%llu calls)",
                  static_cast<double>(z.self_ns) / 1e3,
                  static_cast<double>(z.total_ns) / 1e3,
                  static_cast<unsigned long long>(z.calls));
    bench::row(("  prof " + z.name).c_str(), buf);
  }
  report.metric("cluster_events_per_sec_profiled", clp.events_per_sec);
  report.metric("prof_overhead_pct", prof_overhead_pct);
  report.prof_zones(zones);
  bench::write_prof_json("throughput", zones, /*seed=*/1616, /*threads=*/1);

  // --- C: MC ensemble ---
  const std::size_t replicas = smoke ? 4 : 8;
  std::string reference_json;
  bool bytes_identical = true;
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const mc::EnsembleResult ens = mc_run_at(t, replicas, smoke);
    if (t == 1) {
      reference_json = ens.to_json();
    } else if (ens.to_json() != reference_json) {
      bytes_identical = false;
    }
    std::snprintf(buf, sizeof buf, "%.2f replicas/sec (%.2fs wall)",
                  ens.replicas_per_sec, ens.wall_seconds);
    bench::row(("mc threads = " + std::to_string(t)).c_str(), buf);
    report.metric("replicas_per_sec_t" + std::to_string(t),
                  ens.replicas_per_sec);
  }
  bench::row("ensemble JSON byte-identical",
             bytes_identical ? "yes (threads 1/2/4)" : "NO -- determinism bug");
  report.config("mc_replicas", static_cast<double>(replicas));
  report.metric("mc_bytes_identical",
                bytes_identical ? std::uint64_t{1} : std::uint64_t{0});

  const bool ok = counts_match && speedup >= speedup_floor && cl.csps > 0 &&
                  bytes_identical;
  bench::verdict(ok, "slab scheduler >= 3x legacy, MC output thread-invariant");
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
