// E10: convergence functions under Byzantine faults (paper Secs. 2, 5).
//
// n = 7 nodes, f = 2 actually-faulty ones whose clocks are yanked around
// by milliseconds.  The interval-based functions (OA edge fusion and
// Marzullo) must keep the five correct nodes tightly synchronized and
// keep containment intact; the FTA point-average baseline survives thanks
// to trimming but with visibly worse precision (it cannot exploit
// interval widths).  A no-fault control run calibrates the cost of
// fault tolerance itself.
#include <cctype>

#include "bench_common.hpp"
#include "nti_api.hpp"
#include "sim/periodic.hpp"

using namespace nti;

namespace {

struct Outcome {
  Duration precision_correct;  ///< max pairwise among correct nodes
  Duration alpha_mean;
};

Outcome run_once(csa::Convergence conv, bool inject) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 7;
  cfg.seed = 1010;
  cfg.sync.fault_tolerance = 2;
  cfg.sync.convergence = conv;
  cluster::Cluster cl(cfg);
  cl.start();

  std::vector<std::unique_ptr<sim::PeriodicTask>> saboteurs;
  RngStream chaos(13);
  if (inject) {
    for (const int victim : {5, 6}) {
      saboteurs.push_back(std::make_unique<sim::PeriodicTask>(
          cl.engine(), SimTime::epoch() + Duration::ms(300 + victim * 100),
          Duration::ms(650), [&cl, victim, &chaos](std::uint64_t) {
            const SimTime now = cl.engine().now();
            const Duration yank = chaos.uniform(-Duration::ms(4), Duration::ms(4));
            cl.node(victim).chip().ltu().set_state(
                now, Phi::from_duration(cl.node(victim).true_clock(now) + yank));
          }));
    }
  }

  cl.engine().run_until(SimTime::epoch() + Duration::sec(8));
  SampleSet precision, alpha;
  for (int i = 0; i < 200; ++i) {
    cl.engine().run_until(cl.engine().now() + Duration::ms(100));
    const SimTime t = cl.engine().now();
    Duration lo = Duration::max(), hi = -Duration::max();
    for (const int id : {0, 1, 2, 3, 4}) {
      const Duration c = cl.node(id).true_clock(t);
      lo = std::min(lo, c);
      hi = std::max(hi, c);
      alpha.add(cl.sync(id).current_interval(t).length() / 2);
    }
    precision.add(hi - lo);
  }
  return {precision.max_duration(), alpha.mean_duration()};
}

}  // namespace

int main() {
  bench::header("E10: convergence functions, n = 7, f = 2 Byzantine",
                "interval-based convergence tolerates f faults (Sec. 2)");

  std::printf("  %-12s %-22s %-22s\n", "function", "precision (no faults)",
              "precision (2 Byzantine)");
  struct RowR {
    const char* name;
    csa::Convergence conv;
    Outcome clean, faulty;
  };
  std::vector<RowR> rows = {
      {"OA", csa::Convergence::kOA, {}, {}},
      {"Marzullo", csa::Convergence::kMarzullo, {}, {}},
      {"FTA", csa::Convergence::kFTA, {}, {}},
  };
  bench::BenchReport report("e10_convergence_funcs");
  report.config("num_nodes", 7.0);
  report.config("fault_tolerance", 2.0);
  report.config("seed", 1010.0);
  for (auto& r : rows) {
    r.clean = run_once(r.conv, false);
    r.faulty = run_once(r.conv, true);
    std::printf("  %-12s %-22s %-22s\n", r.name,
                r.clean.precision_correct.str().c_str(),
                r.faulty.precision_correct.str().c_str());
    std::string key = r.name;
    for (auto& c : key) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    report.metric(key + "_precision_clean", r.clean.precision_correct);
    report.metric(key + "_precision_byzantine", r.faulty.precision_correct);
  }

  const bool oa_ok = rows[0].faulty.precision_correct < Duration::us(10);
  const bool mz_ok = rows[1].faulty.precision_correct < Duration::us(10);
  const bool degradation_bounded =
      rows[0].faulty.precision_correct <
      rows[0].clean.precision_correct * 4 + Duration::us(2);
  bench::verdict(oa_ok && mz_ok && degradation_bounded,
                 "interval fusions hold low-us precision despite f=2 Byzantine");
  report.pass(oa_ok && mz_ok);
  report.write();
  return (oa_ok && mz_ok) ? 0 : 1;
}
