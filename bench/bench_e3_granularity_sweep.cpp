// E3: granularity / rate-adjustment-uncertainty impairment (paper Sec. 5).
//
// "Our analysis of the orthogonal accuracy convergence function OA reveals
// that clock granularity G and discrete rate adjustment uncertainty u
// impair the achievable worst case precision by 4G + 10u.  [With]
// u = 1/f_osc for the adder-based clock, G = u < 70 ns (f_osc > 14 MHz) is
// required for a worst case precision below 1 us."
//
// 4G + 10u is a *worst-case analytical bound* on the impairment.  In the
// model, lowering f_osc coarsens every timestamp capture (the synchronizer
// samples on oscillator edges) and the rate-adjustment quantum -- the
// u-term.  The bench sweeps f_osc and checks the shape the bound implies:
// (a) measured precision degrades monotonically as f_osc drops, (b) the
// measured u-impairment never exceeds the analytical 4G + 10u envelope
// (typical-case measurements sit below a worst-case bound), and (c) the
// sub-1 us impairment budget is met at f_osc >= 14 MHz, as the paper
// derives.
#include <vector>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

int main() {
  bench::header("E3: precision vs oscillator frequency (4G + 10u law)",
                "impairment ~ 4G + 10u, u = 1/f_osc; < 1 us needs f_osc > 14 MHz");

  bench::BenchReport report("e3_granularity_sweep");
  report.config("num_nodes", 4.0);
  report.config("seed", 333.0);
  report.config("sim_seconds", 60.0);

  struct Point {
    double f_mhz;
    Duration p_max;
    Duration u;
  };
  std::vector<Point> pts;
  std::printf("  %-10s %-12s %-14s %-14s\n", "f_osc", "u = 1/f", "precision max",
              "precision p99");
  for (const double f_mhz : {1.0, 2.0, 5.0, 10.0, 14.0, 20.0}) {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.seed = 333;
    cfg.sync.fault_tolerance = 1;
    cfg.osc_base = osc::OscConfig::tcxo(f_mhz * 1e6);
    // The synchronizer/stamp quantization grows with the tick period; the
    // preprocessing slack must budget for it or containment breaks.
    const Duration tick = Duration::ps(static_cast<std::int64_t>(1e12 / (f_mhz * 1e6)));
    cfg.sync.granularity = Duration::ns(60) + tick * 2;
    cluster::Cluster cl(cfg);
    cl.start();
    cl.run(Duration::sec(60), Duration::sec(20), Duration::ms(200));
    const Point p{f_mhz, cl.precision_samples().max_duration(), tick};
    pts.push_back(p);
    char key[48];
    std::snprintf(key, sizeof key, "precision_max_%gmhz", f_mhz);
    report.metric(key, p.p_max);
    std::printf("  %6.1f MHz %-12s %-14s %-14s  (violations: %llu)\n", f_mhz,
                p.u.str().c_str(), p.p_max.str().c_str(),
                cl.precision_samples().percentile_duration(99).str().c_str(),
                static_cast<unsigned long long>(cl.containment_violations()));
  }

  // Shape checks.
  bool monotone_ok = true;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    // Precision must not degrade as f_osc rises (20% sampling-noise slack).
    if (static_cast<double>(pts[i].p_max.count_ps()) >
        1.2 * static_cast<double>(pts[i - 1].p_max.count_ps())) {
      monotone_ok = false;
    }
  }
  // Measured u-impairment (excess over the 20 MHz point) vs the analytical
  // worst-case envelope 4G + 10u (relative to the same baseline).
  bool bound_ok = true;
  const Duration g = Duration::ns(60);
  for (const auto& p : pts) {
    const Duration measured = p.p_max - pts.back().p_max;
    const Duration envelope = g * 4 + p.u * 10 - pts.back().u * 10;
    char buf[96];
    std::snprintf(buf, sizeof buf, "@%.0f MHz: measured %+0.3f us <= bound %.3f us",
                  p.f_mhz, measured.to_us_f(), envelope.to_us_f());
    bench::row("u-impairment vs 4G+10u envelope", buf);
    if (measured > envelope) bound_ok = false;
  }
  // The paper's criterion: at f_osc >= 14 MHz the granularity/rate terms
  // leave the 1 us budget intact (impairment over the best point < 1 us).
  const bool budget_ok =
      (pts[4].p_max - pts.back().p_max) < Duration::us(1) &&
      pts[0].p_max > pts.back().p_max;  // 1 MHz visibly worse than 20 MHz
  bench::verdict(monotone_ok && budget_ok && bound_ok,
                 "monotone in u, within the 4G+10u envelope, budget met at "
                 ">= 14 MHz");
  report.metric("impairment_at_14mhz", pts[4].p_max - pts.back().p_max);
  report.metric("monotone_ok", monotone_ok ? 1.0 : 0.0);
  report.metric("bound_ok", bound_ok ? 1.0 : 0.0);
  report.pass(monotone_ok && budget_ok && bound_ok);
  report.write();
  return (monotone_ok && budget_ok && bound_ok) ? 0 : 1;
}
