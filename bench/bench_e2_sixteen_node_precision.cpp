// E2: the 16-node prototype (paper Sec. 4).
//
// "A more thorough experimental evaluation ... will be conducted on a 16
// node prototype distributed system consisting of four MVME-162 with four
// NTIs each."  The paper's design target for this system is worst-case
// precision/accuracy in the 1 us range (Secs. 1, 6).
//
// The headline OA run is a Monte-Carlo ensemble (default 16 replicas over
// independently seeded oscillator draws / medium jitter; NTI_MC_REPLICAS
// and NTI_MC_THREADS override), so the reported worst-case precision is a
// worst case over the ensemble, with a 95% CI on the mean.  The
// per-convergence-function comparison (Marzullo, FTA) runs smaller
// ensembles on the same root seed for a paired comparison.
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

cluster::ClusterConfig base_cfg(csa::Convergence conv) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.sync.fault_tolerance = 2;
  cfg.sync.convergence = conv;
  // The interval paradigm requires rho to dominate the true oscillator
  // drift: the +-2 ppm manufacturing spread plus +-0.5 ppm TCXO wander
  // leaves the default rho = 2 ppm with zero margin, which the Monte-Carlo
  // ensemble exposed as containment violations on unlucky draws (the
  // original single seed never hit it).  3 ppm restores the a-priori bound.
  cfg.sync.rho_bound_ppm = 3.0;
  return cfg;
}

mc::EnsembleResult run_ensemble(csa::Convergence conv,
                                bench::BenchReport* rep) {
  mc::McConfig mcc = mc::apply_env({});
  mcc.root_seed = 1616;
  mcc.total = Duration::sec(300);
  mcc.warmup = Duration::sec(30);
  mcc.probe_period = Duration::ms(250);
  mcc.keep_trajectories = false;

  cluster::ClusterConfig cfg = base_cfg(conv);
  if (rep != nullptr) {
    // Every replica of the reported ensemble carries the CSP lifecycle
    // spans + the pi(t)/alpha(t) recorder, but only replica 0 exports
    // them: its registry snapshot (span.stage.* latency histograms,
    // engine/medium/sync counters) folds into the bench JSON, and it
    // writes the Chrome-trace/CSV artifacts.
    cfg.enable_spans = true;
    cfg.span_max_events = 50'000;
    cfg.record_timeseries = true;
  }
  mc::Runner runner(cfg, mcc);
  if (rep != nullptr) {
    runner.set_extractor([rep](mc::ReplicaContext& ctx) {
      if (ctx.index() != 0) return;
      auto& cl = ctx.cluster();
      rep->from_registry(cl.metrics());
      rep->metric("alpha_minus_worst", cl.worst_alpha_minus());
      rep->metric("alpha_plus_worst", cl.worst_alpha_plus());
      rep->obs_metric("span.events_dropped", cl.spans()->dropped_events());
      if (obs::write_chrome_trace("TRACE_e2_sixteen_node_precision.json",
                                  *cl.spans())) {
        bench::row("chrome trace", "TRACE_e2_sixteen_node_precision.json (" +
                                       std::to_string(cl.spans()->event_count()) +
                                       " span events)");
      }
      if (cl.timeseries()->write_csv("TIMESERIES_e2_sixteen_node_precision.csv")) {
        bench::row("time series",
                   "TIMESERIES_e2_sixteen_node_precision.csv (" +
                       std::to_string(cl.timeseries()->rows()) + " samples)");
      }
    });
  }
  return runner.run();
}

void ensemble_rows(const mc::EnsembleResult& ens) {
  bench::row("precision max ensemble",
             bench::ensemble_summary(*ens.stat("precision_max_us")));
  bench::row("precision p99 ensemble",
             bench::ensemble_summary(*ens.stat("precision_p99_us")));
  bench::row("worst |C - UTC| (no GPS: drift-bounded)",
             bench::ensemble_summary(*ens.stat("accuracy_max_us")));
  bench::row("mean accuracy half-width alpha",
             bench::ensemble_summary(*ens.stat("alpha_mean_us")));
  bench::row("containment violations (ensemble max)",
             std::to_string(ens.stat("violations")->max));
}

}  // namespace

int main() {
  bench::header("E2: 16-node prototype precision (5 simulated minutes)",
                "worst-case precision/accuracy in the 1 us range (Secs. 1/4/6)");

  bench::BenchReport report("e2_sixteen_node_precision");
  report.config("num_nodes", 16.0);
  report.config("root_seed", 1616.0);
  report.manifest_seed(1616);
  report.config("fault_tolerance", 2.0);
  report.config("sim_seconds", 300.0);

  const mc::EnsembleResult oa = run_ensemble(csa::Convergence::kOA, &report);
  std::printf("  OA convergence (f = 2, %zu replicas x %zu threads):\n",
              oa.replicas, oa.threads_used);
  ensemble_rows(oa);

  const mc::EnsembleResult mz = run_ensemble(csa::Convergence::kMarzullo, nullptr);
  std::printf("  Marzullo convergence (f = 2):\n");
  bench::row("precision max ensemble",
             bench::ensemble_summary(*mz.stat("precision_max_us")));
  bench::row("containment violations (ensemble max)",
             std::to_string(mz.stat("violations")->max));

  const mc::EnsembleResult fta = run_ensemble(csa::Convergence::kFTA, nullptr);
  std::printf("  FTA baseline (f = 2):\n");
  bench::row("precision max ensemble",
             bench::ensemble_summary(*fta.stat("precision_max_us")));

  // "1 us range" for the real testbed means low single-digit us given
  // epsilon ~0.4 us, 60 ns granularity, and 16 nodes; pass when worst-case
  // precision stays below 5 us in every replica and containment never
  // breaks anywhere in the ensemble.
  const bool ok = oa.stat("precision_max_us")->max < 5.0 &&
                  oa.stat("violations")->max == 0.0;
  bench::verdict(ok, "16-node worst-case precision in the low-us range");

  report.from_ensemble(oa);
  report.ensemble("marzullo.precision_max_us", *mz.stat("precision_max_us"));
  report.ensemble("fta.precision_max_us", *fta.stat("precision_max_us"));
  report.metric("containment_violations_ensemble_max",
                oa.stat("violations")->max);
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
