// E2: the 16-node prototype (paper Sec. 4).
//
// "A more thorough experimental evaluation ... will be conducted on a 16
// node prototype distributed system consisting of four MVME-162 with four
// NTIs each."  The paper's design target for this system is worst-case
// precision/accuracy in the 1 us range (Secs. 1, 6).  This bench runs the
// 16-node cluster for five simulated minutes and reports the precision and
// accuracy distributions the SNU-style snapshot probe observes, plus the
// per-convergence-function comparison on the identical seed.
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

struct Result {
  Duration p_max, p99, acc_max, alpha_mean;
  std::uint64_t violations;
};

Result run_once(csa::Convergence conv, bench::BenchReport* rep = nullptr) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 16;
  cfg.seed = 1616;
  cfg.sync.fault_tolerance = 2;
  cfg.sync.convergence = conv;
  if (rep != nullptr) {
    // Reported run only: CSP lifecycle spans (per-stage latency histograms
    // land under span.* in the registry snapshot below) and the pi(t) /
    // alpha(t) trajectory recorder.  The event cap bounds memory; the
    // histograms keep accumulating over the full 300 s.
    cfg.enable_spans = true;
    cfg.span_max_events = 50'000;
    cfg.record_timeseries = true;
  }
  cluster::Cluster cl(cfg);
  cl.start();
  cl.run(Duration::sec(300), Duration::sec(30), Duration::ms(250));
  if (rep != nullptr) {
    // Registry carries cluster.precision_us / precision_max_us /
    // accuracy_worst_us scalars plus engine/medium/per-node sync counters
    // and the span.stage.* latency histograms (p50/p99/max/count).
    rep->from_registry(cl.metrics());
    rep->metric("alpha_minus_worst", cl.worst_alpha_minus());
    rep->metric("alpha_plus_worst", cl.worst_alpha_plus());
    if (cl.timeseries()->write_csv("TIMESERIES_e2_sixteen_node_precision.csv")) {
      bench::row("time series",
                 "TIMESERIES_e2_sixteen_node_precision.csv (" +
                     std::to_string(cl.timeseries()->rows()) + " samples)");
    }
  }
  return {cl.precision_samples().max_duration(),
          cl.precision_samples().percentile_duration(99),
          cl.accuracy_samples().max_duration(),
          cl.alpha_samples().mean_duration(), cl.containment_violations()};
}

}  // namespace

int main() {
  bench::header("E2: 16-node prototype precision (5 simulated minutes)",
                "worst-case precision/accuracy in the 1 us range (Secs. 1/4/6)");

  bench::BenchReport report("e2_sixteen_node_precision");
  report.config("num_nodes", 16.0);
  report.config("seed", 1616.0);
  report.config("fault_tolerance", 2.0);
  report.config("sim_seconds", 300.0);
  const Result oa = run_once(csa::Convergence::kOA, &report);
  std::printf("  OA convergence (f = 2):\n");
  bench::row("precision max", oa.p_max.str());
  bench::row("precision p99", oa.p99.str());
  bench::row("worst |C - UTC| (no GPS: drift-bounded)", oa.acc_max.str());
  bench::row("mean accuracy half-width alpha", oa.alpha_mean.str());
  bench::row("containment violations", std::to_string(oa.violations));

  const Result mz = run_once(csa::Convergence::kMarzullo);
  std::printf("  Marzullo convergence (f = 2):\n");
  bench::row("precision max", mz.p_max.str());
  bench::row("containment violations", std::to_string(mz.violations));

  const Result fta = run_once(csa::Convergence::kFTA);
  std::printf("  FTA baseline (f = 2):\n");
  bench::row("precision max", fta.p_max.str());

  // "1 us range" for the real testbed means low single-digit us given
  // epsilon ~0.4 us, 60 ns granularity, and 16 nodes; pass when worst-case
  // precision stays below 5 us and containment never breaks.
  const bool ok = oa.p_max < Duration::us(5) && oa.violations == 0;
  bench::verdict(ok, "16-node worst-case precision in the low-us range");

  report.metric("precision_max", oa.p_max);
  report.metric("precision_p99", oa.p99);
  report.metric("accuracy_max", oa.acc_max);
  report.metric("alpha_mean", oa.alpha_mean);
  report.metric("containment_violations", oa.violations);
  report.metric("precision_max_marzullo", mz.p_max);
  report.metric("precision_max_fta", fta.p_max);
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
