// E9: the adder-based clock (paper Sec. 3.3).
//
// Functional claims checked quantitatively:
//   * rate adjustment granularity f_osc * 2^-51 s/s ("steps of ~10 ns/s");
//   * timestamp resolution 2^-24 s (~60 ns), wrap every 256 s;
//   * continuous amortization applies an exact offset without any jump;
//   * leap-second insertion/deletion in hardware.
// Plus google-benchmark timings of the simulation model's hot operations
// (a simulator substrate claim: O(1) lazy reads, no per-tick work).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

void functional_report() {
  bench::header("E9: adder-based clock properties",
                "~10 ns/s rate steps, 60 ns stamps, hw amortization & leaps");
  bench::BenchReport report("e9_adder_clock");
  report.config("f_osc_mhz", 10.0);

  // Rate granularity at the two interesting frequencies.
  for (const double f : {10e6, 20e6}) {
    const double step_ns_per_s = f * std::pow(2.0, -51) * 1e9;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f ns/s", step_ns_per_s);
    bench::row(f == 10e6 ? "rate step @ 10 MHz" : "rate step @ 20 MHz", buf);
    report.metric(f == 10e6 ? "rate_step_10mhz_ns_per_s" : "rate_step_20mhz_ns_per_s",
                  step_ns_per_s);
  }

  // Amortization exactness: absorb +137 us at 0.2% slew, measure residual.
  {
    osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
    utcsu::Ltu ltu(osc, Phi::from_sec(0));
    const SimTime t1 = SimTime::epoch() + Duration::sec(1);
    ltu.read(t1);
    const std::uint64_t step = ltu.step().magnitude();
    const std::uint64_t extra = step / 500;
    const u128 want = Phi::from_duration(Duration::us(137)).raw_value();
    const auto ticks = static_cast<std::uint64_t>(want / extra);
    ltu.start_amortization(
        t1, RateStep::raw(static_cast<std::int64_t>(step + extra)),
        TickCount::of(ticks));
    const Phi c = ltu.read(SimTime::epoch() + Duration::sec(3));
    const double residual =
        std::abs(c.to_sec_f() - (3.0 + 137e-6)) - 0.0;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f ns residual", residual * 1e9);
    bench::row("amortize +137 us @ 0.2% slew", buf);
    report.metric("amortize_residual_ns", residual * 1e9);
  }

  // Leap second.
  {
    osc::QuartzOscillator osc(osc::OscConfig::ideal(10e6), RngStream(1));
    utcsu::Ltu ltu(osc, Phi::from_sec(0));
    ltu.arm_leap(true, Phi::from_sec(2));
    const double v = ltu.read(SimTime::epoch() + Duration::sec(3)).to_sec_f();
    char buf[64];
    std::snprintf(buf, sizeof buf, "reads %.6f s at real 3 s (expect 4)", v);
    bench::row("leap insert at clock = 2 s", buf);
    report.metric("leap_read_at_3s_sec", v);
    report.pass(std::abs(v - 4.0) < 1e-4);
  }

  bench::verdict(true, "see rows above; timing benchmarks follow");
  report.write();
}

void BM_ClockRead(benchmark::State& state) {
  osc::QuartzOscillator osc(osc::OscConfig::tcxo(10e6), RngStream(2));
  utcsu::Ltu ltu(osc, Phi::from_sec(0));
  std::int64_t t = 1;
  for (auto _ : state) {
    t += 100'000;  // +100 ns per read
    benchmark::DoNotOptimize(ltu.read(SimTime::from_ps(t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClockRead);

void BM_ClockReadLargeGap(benchmark::State& state) {
  // Lazy evaluation: a read after a 1-second gap must not cost 10^7 ticks.
  osc::QuartzOscillator osc(osc::OscConfig::tcxo(10e6), RngStream(3));
  utcsu::Ltu ltu(osc, Phi::from_sec(0));
  std::int64_t t = 1;
  for (auto _ : state) {
    t += 1'000'000'000'000;  // +1 s per read
    benchmark::DoNotOptimize(ltu.read(SimTime::from_ps(t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClockReadLargeGap);

void BM_CaptureStamp(benchmark::State& state) {
  sim::Engine engine;
  osc::QuartzOscillator osc(osc::OscConfig::tcxo(10e6), RngStream(4));
  utcsu::Utcsu chip(engine, osc, utcsu::UtcsuConfig{});
  std::int64_t t = 1;
  for (auto _ : state) {
    t += 50'000'000;
    chip.trigger_receive(0, SimTime::from_ps(t));
    benchmark::DoNotOptimize(chip.ssu_rx(0));
  }
}
BENCHMARK(BM_CaptureStamp);

void BM_DutyTimerArm(benchmark::State& state) {
  sim::Engine engine;
  osc::QuartzOscillator osc(osc::OscConfig::tcxo(10e6), RngStream(5));
  utcsu::Utcsu chip(engine, osc, utcsu::UtcsuConfig{});
  std::uint32_t frac = 0;
  for (auto _ : state) {
    chip.bus_write(engine.now(), utcsu::kRegDutyBase + utcsu::kDutyCompareLo,
                   frac++ & 0xFF'FFFF);
    chip.bus_write(engine.now(), utcsu::kRegDutyBase + utcsu::kDutyCompareHi, 10);
    chip.bus_write(engine.now(), utcsu::kRegDutyBase + utcsu::kDutyCtrl, 1);
  }
}
BENCHMARK(BM_DutyTimerArm);

void BM_MarzulloFusion16(benchmark::State& state) {
  RngStream rng(6);
  std::vector<interval::AccInterval> xs;
  for (int i = 0; i < 16; ++i) {
    const Duration lo = rng.uniform(Duration::zero(), Duration::us(10));
    xs.push_back(interval::AccInterval::from_edges(lo, lo + Duration::us(20)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(interval::marzullo(xs, 2));
  }
}
BENCHMARK(BM_MarzulloFusion16);

}  // namespace

int main(int argc, char** argv) {
  functional_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
