// A1 (ablation): continuous amortization vs hard state stepping.
//
// The UTCSU applies state corrections by temporarily switching the clock's
// augend ("continuous amortization", paper Sec. 3.3), which the paper
// lists among the features "not found in alternative approaches" (Sec. 5).
// This ablation quantifies what the feature buys: with hard stepping, any
// backward correction makes the local clock jump backwards, so densely
// sampled application timestamps go non-monotone -- poison for the event
// ordering the introduction motivates.  Amortization keeps every clock
// strictly monotone at identical synchronization quality.
#include "bench_common.hpp"
#include "nti_api.hpp"
#include "sim/periodic.hpp"

using namespace nti;

namespace {

struct Outcome {
  std::uint64_t nonmonotone_reads = 0;
  std::uint64_t reads = 0;
  Duration precision_max;
  std::uint64_t violations = 0;
};

Outcome run_once(bool amortize) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 2024;
  cfg.sync.fault_tolerance = 1;
  cfg.sync.use_amortization = amortize;
  cluster::Cluster cl(cfg);
  cl.start();

  // An application reading the clock immediately before and after each
  // resynchronization (the worst case for a stepped clock: back-to-back
  // event timestamps straddling the correction).
  Outcome out{};
  for (int i = 0; i < 4; ++i) {
    auto prev = cl.node(i).driver().on_duty;
    cl.node(i).driver().on_duty = [prev, i, &cl, &out](int timer) {
      if (timer != 1) {
        prev(timer);
        return;
      }
      const SimTime now = cl.engine().now();
      const Duration before = cl.node(i).driver().read_clock(now);
      prev(timer);  // the resynchronization applies its correction here
      const Duration after = cl.node(i).driver().read_clock(now);
      ++out.reads;
      if (after < before) ++out.nonmonotone_reads;
    };
  }
  cl.run(Duration::sec(60), Duration::sec(10), Duration::ms(200));
  out.precision_max = cl.precision_samples().max_duration();
  out.violations = cl.containment_violations();
  return out;
}

}  // namespace

int main() {
  bench::header("A1 (ablation): continuous amortization vs hard stepping",
                "amortization keeps clocks monotone at equal sync quality "
                "(Secs. 3.3, 5)");

  const Outcome amort = run_once(true);
  const Outcome step = run_once(false);

  char buf[96];
  std::printf("  %-30s %-18s %-18s\n", "", "amortization", "hard stepping");
  std::snprintf(buf, sizeof buf, "  %-30s %-18llu %-18llu", "non-monotone clock reads",
                static_cast<unsigned long long>(amort.nonmonotone_reads),
                static_cast<unsigned long long>(step.nonmonotone_reads));
  std::puts(buf);
  std::snprintf(buf, sizeof buf, "  %-30s %-18llu %-18llu", "clock reads sampled",
                static_cast<unsigned long long>(amort.reads),
                static_cast<unsigned long long>(step.reads));
  std::puts(buf);
  std::snprintf(buf, sizeof buf, "  %-30s %-18s %-18s", "precision max",
                amort.precision_max.str().c_str(), step.precision_max.str().c_str());
  std::puts(buf);
  std::snprintf(buf, sizeof buf, "  %-30s %-18llu %-18llu", "containment violations",
                static_cast<unsigned long long>(amort.violations),
                static_cast<unsigned long long>(step.violations));
  std::puts(buf);

  const bool ok = amort.nonmonotone_reads == 0 && step.nonmonotone_reads > 0 &&
                  amort.precision_max < step.precision_max * 2 + Duration::us(2);
  bench::verdict(ok,
                 "amortized clocks strictly monotone; stepping visibly breaks "
                 "monotonicity");

  bench::BenchReport report("a1_amortization_ablation");
  report.config("num_nodes", 4.0);
  report.config("seed", 2024.0);
  report.metric("nonmonotone_reads_amortized", amort.nonmonotone_reads);
  report.metric("nonmonotone_reads_stepped", step.nonmonotone_reads);
  report.metric("reads_sampled", amort.reads + step.reads);
  report.metric("precision_max_amortized", amort.precision_max);
  report.metric("precision_max_stepped", step.precision_max);
  report.metric("containment_violations", amort.violations + step.violations);
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
