// A1 (ablation): continuous amortization vs hard state stepping.
//
// The UTCSU applies state corrections by temporarily switching the clock's
// augend ("continuous amortization", paper Sec. 3.3), which the paper
// lists among the features "not found in alternative approaches" (Sec. 5).
// This ablation quantifies what the feature buys: with hard stepping, any
// backward correction makes the local clock jump backwards, so densely
// sampled application timestamps go non-monotone -- poison for the event
// ordering the introduction motivates.  Amortization keeps every clock
// strictly monotone at identical synchronization quality.
//
// Both arms run as paired Monte-Carlo ensembles (same replica seeds, so
// each replica compares amortized vs stepped under identical oscillator
// draws; NTI_MC_REPLICAS / NTI_MC_THREADS override the defaults).  The
// claim must hold in *every* replica: zero non-monotone reads amortized,
// at least one non-monotone read stepped.
#include "bench_common.hpp"
#include "nti_api.hpp"
#include "sim/periodic.hpp"

using namespace nti;

namespace {

struct ReadCounters {
  std::uint64_t nonmonotone = 0;
  std::uint64_t reads = 0;
};

mc::EnsembleResult run_ensemble(bool amortize) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.sync.fault_tolerance = 1;
  cfg.sync.use_amortization = amortize;

  mc::McConfig mcc = mc::apply_env({});
  mcc.root_seed = 2024;
  mcc.total = Duration::sec(60);
  mcc.warmup = Duration::sec(10);
  mcc.probe_period = Duration::ms(200);
  mcc.keep_trajectories = false;

  // Per-replica counters in a pre-sized slot array: each replica touches
  // only its own index, so worker threads never contend.
  auto counter_slots = std::make_shared<std::vector<ReadCounters>>(mcc.replicas);

  mc::Runner runner(cfg, mcc);
  runner.set_replica_hook([counter_slots](mc::ReplicaContext& ctx) {
    ReadCounters& counters = (*counter_slots)[ctx.index()];
    auto& cl = ctx.cluster();
    // An application reading the clock immediately before and after each
    // resynchronization (the worst case for a stepped clock: back-to-back
    // event timestamps straddling the correction).
    for (int i = 0; i < cl.size(); ++i) {
      auto prev = cl.node(i).driver().on_duty;
      cl.node(i).driver().on_duty = [prev, i, &cl, &counters](int timer) {
        if (timer != 1) {
          prev(timer);
          return;
        }
        const SimTime now = cl.engine().now();
        const Duration before = cl.node(i).driver().read_clock(now);
        prev(timer);  // the resynchronization applies its correction here
        const Duration after = cl.node(i).driver().read_clock(now);
        ++counters.reads;
        if (after < before) ++counters.nonmonotone;
      };
    }
  });
  runner.set_extractor([counter_slots](mc::ReplicaContext& ctx) {
    const ReadCounters& counters = (*counter_slots)[ctx.index()];
    ctx.metric("nonmonotone_reads", static_cast<double>(counters.nonmonotone));
    ctx.metric("reads_sampled", static_cast<double>(counters.reads));
  });
  return runner.run();
}

}  // namespace

int main() {
  bench::header("A1 (ablation): continuous amortization vs hard stepping",
                "amortization keeps clocks monotone at equal sync quality "
                "(Secs. 3.3, 5)");

  const mc::EnsembleResult amort = run_ensemble(true);
  const mc::EnsembleResult step = run_ensemble(false);

  bench::row("replicas x threads",
             std::to_string(amort.replicas) + " x " +
                 std::to_string(amort.threads_used) + "  (paired seeds)");
  char buf[160];
  std::snprintf(buf, sizeof buf, "%.0f | %.0f (ensemble totals)",
                amort.stat("nonmonotone_reads")->mean *
                    static_cast<double>(amort.replicas),
                step.stat("nonmonotone_reads")->mean *
                    static_cast<double>(step.replicas));
  bench::row("non-monotone reads amortized|stepped", buf);
  bench::row("precision max amortized",
             bench::ensemble_summary(*amort.stat("precision_max_us")));
  bench::row("precision max stepped",
             bench::ensemble_summary(*step.stat("precision_max_us")));
  snprintf(buf, sizeof buf, "%.0f | %.0f",
           amort.stat("violations")->max, step.stat("violations")->max);
  bench::row("containment violations max (amort|step)", buf);

  // Every replica: amortized strictly monotone, stepped visibly broken,
  // and sync quality comparable (ensemble means within 2x + 2 us).
  const bool ok =
      amort.stat("nonmonotone_reads")->max == 0.0 &&
      step.stat("nonmonotone_reads")->min > 0.0 &&
      amort.stat("precision_max_us")->mean <
          step.stat("precision_max_us")->mean * 2.0 + 2.0;
  bench::verdict(ok,
                 "amortized clocks strictly monotone in every replica; "
                 "stepping visibly breaks monotonicity in every replica");

  bench::BenchReport report("a1_amortization_ablation");
  report.config("num_nodes", 4.0);
  report.config("root_seed", 2024.0);
  report.from_ensemble(amort);
  report.ensemble("stepped.nonmonotone_reads", *step.stat("nonmonotone_reads"));
  report.ensemble("stepped.precision_max_us", *step.stat("precision_max_us"));
  report.ensemble("amortized.nonmonotone_reads",
                  *amort.stat("nonmonotone_reads"));
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
