// E5: dynamic accuracy intervals vs static worst-case bounds (paper Sec. 2).
//
// "Since accuracy intervals are maintained dynamically, they are quite
// small on the average, which compares favorably to the 'static' worst
// case accuracy bounds known for traditional clock synchronization
// algorithms."
//
// The bench traces one node's alpha over several rounds (the sawtooth:
// reset small at each resynchronization, deteriorated at the drift bound
// in between) and compares the time-average against the static bound a
// traditional algorithm would have to advertise for the same system
// (initial scatter + rho_max * P for every instant of every round).
#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

int main() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 5;
  cfg.sync.fault_tolerance = 1;
  // External anchoring: without a UTC source, internal synchronization
  // cannot shrink accuracy below the initial uncertainty (no amount of
  // mutual exchange improves knowledge of UTC); the dynamic-vs-static
  // comparison the paper makes presumes the external-sync setting.
  cfg.gps_nodes = {0};
  cluster::Cluster cl(cfg);
  cl.start();

  // Sample node 0's interval at 20 ms resolution after convergence.
  SampleSet widths;
  Duration peak = Duration::zero();
  cl.engine().run_until(SimTime::epoch() + Duration::sec(10));
  SampleSet sawtooth_trace;
  for (int i = 0; i < 3000; ++i) {
    cl.engine().run_until(cl.engine().now() + Duration::ms(20));
    const auto iv = cl.sync(0).current_interval(cl.engine().now());
    const Duration w = iv.length() / 2;
    widths.add(w);
    peak = std::max(peak, w);
    if (i < 100) sawtooth_trace.add(w);
  }

  bench::header("E5: dynamic accuracy intervals vs static bounds",
                "dynamically maintained intervals are small on average (Sec. 2)");
  bench::row("alpha half-width distribution", bench::dist_summary(widths));
  bench::row("time-average alpha", widths.mean_duration().str());
  bench::row("peak alpha (end-of-round sawtooth top)", peak.str());

  // The static alternative: a traditional algorithm's advertised accuracy
  // must cover the worst instant of the worst round at all times.
  const Duration static_bound =
      Duration::from_sec_f(cfg.sync.round_period.to_sec_f() *
                           cfg.sync.rho_bound_ppm * 1e-6) +
      cfg.sync.delay_max + cfg.sync.granularity * 4;
  bench::row("static per-round worst-case bound", static_bound.str());
  const double gain = static_bound.to_sec_f() / widths.mean_duration().to_sec_f();
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2fx", gain);
  bench::row("average advantage of dynamic intervals", buf);

  // Containment must hold throughout (checked by cluster probes).
  const auto probe = cl.probe();
  bench::row("current precision", probe.precision.str());
  const bool ok = widths.mean_duration() < static_bound && gain > 1.0;
  bench::verdict(ok, "mean dynamic alpha below the static worst-case bound");

  bench::BenchReport report("e5_accuracy_dynamics");
  report.config("num_nodes", static_cast<double>(cfg.num_nodes));
  report.config("seed", static_cast<double>(cfg.seed));
  report.metric("alpha_mean", widths.mean_duration());
  report.metric("alpha_peak", peak);
  report.metric("static_bound", static_bound);
  report.metric("dynamic_gain_x", gain);
  report.distribution("alpha", widths);
  report.from_registry(cl.metrics());
  report.pass(ok);
  report.write();
  return ok ? 0 : 1;
}
