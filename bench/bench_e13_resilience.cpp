// E13: ensemble resilience under the unified fault-injection subsystem.
//
// The paper's fault hypothesis (Sec. 2) assumes transmission faults are
// rare and detectable (CRC/checksum), and tolerates up to f arbitrarily
// faulty nodes per round.  This bench quantifies what "tolerates" means as
// the medium degrades: a loss% x corruption% fault matrix, each cell an
// independent Monte-Carlo ensemble (>= 8 replicas, decorrelated via forked
// replica seeds), plus a crash/rejoin cell exercising the cold-clock
// restart path through the CSA rounds.
//
// Gates (the claim's *shape*, not exact figures):
//   * at paper-assumption rates (loss <= 5%, corruption <= 1%) every
//     replica keeps zero containment violations -- faults are absorbed,
//     not merely survived;
//   * beyond them precision degrades monotonically and gracefully (worst
//     cell stays within 100 us, no collapse);
//   * a crashed node re-converges within 10 rounds of its restart and the
//     survivors' containment never breaks while it is away.
//
// Determinism: the emitted BENCH_e13_resilience.json is byte-identical for
// any NTI_MC_THREADS (the per-cell ensembles reduce in replica slot order;
// wall-clock never enters the report).
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nti_api.hpp"

using namespace nti;

namespace {

constexpr std::uint64_t kRootSeed = 1313;

cluster::ClusterConfig base_cfg() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 5;
  cfg.sync.fault_tolerance = 1;
  return cfg;
}

mc::McConfig mc_cfg() {
  mc::McConfig mcc;
  mcc.replicas = 8;
  mcc.root_seed = kRootSeed;
  mcc.total = Duration::sec(20);
  mcc.warmup = Duration::sec(5);
  mcc.probe_period = Duration::ms(100);
  mcc.keep_trajectories = false;
  return mc::apply_env(mcc);
}

mc::EnsembleResult run_cell(fault::FaultPlan plan) {
  cluster::ClusterConfig cfg = base_cfg();
  cfg.faults = std::move(plan);
  mc::Runner runner(cfg, mc_cfg());
  return runner.run();
}

/// Watchdog state for the crash cell, one per replica.
struct CrashWatch {
  std::uint64_t nonfaulty_violations = 0;
  SimTime reconverged = SimTime::never();
};

}  // namespace

int main() {
  const mc::McConfig mcc = mc_cfg();
  bench::header(
      "E13: resilience fault-matrix (loss% x corruption% + crash/rejoin)",
      "paper-assumption fault rates are absorbed with zero containment "
      "violations; beyond them precision degrades monotonically, and a "
      "crashed node re-converges within bounded rounds");

  bench::BenchReport report("e13_resilience");
  report.config("num_nodes", 5.0);
  report.config("fault_tolerance", 1.0);
  report.config("root_seed", static_cast<double>(kRootSeed));
  report.config("replicas", static_cast<double>(mcc.replicas));
  report.config("total", mcc.total);
  report.config("warmup", mcc.warmup);

  bool all_ok = true;
  const auto gate = [&all_ok](bool ok, const char* what) {
    if (!ok) {
      all_ok = false;
      std::printf("  GATE FAILED: %s\n", what);
    }
  };

  // --- the loss% x corruption% matrix --------------------------------------
  const std::vector<int> loss_pct = {0, 1, 5, 20};
  const std::vector<int> corrupt_pct = {0, 1, 10};
  double baseline_p99 = 0.0;
  double p99_l20_c0 = 0.0, p99_l0_c10 = 0.0, worst_p99 = 0.0;

  std::printf("  %-14s %-15s %-15s %-12s %s\n", "cell", "precision p99",
              "precision max", "violations", "injections (mean)");
  for (const int lp : loss_pct) {
    for (const int cp : corrupt_pct) {
      fault::FaultPlan plan;
      if (lp > 0) plan.add(fault::FaultSpec::frame_loss(lp / 100.0));
      if (cp > 0) plan.add(fault::FaultSpec::frame_corrupt(cp / 100.0));
      const mc::EnsembleResult ens = run_cell(std::move(plan));

      const double p99 = ens.precision_hist.percentile(99);
      const double pmax = ens.precision_hist.max();
      const mc::EnsembleStat* viol = ens.stat("violations");
      const mc::EnsembleStat* inj = ens.stat("fault_injections");
      const std::string key =
          "l" + std::to_string(lp) + "_c" + std::to_string(cp);
      std::printf("  %-14s %-15.3f %-15.3f %-12.0f %.0f\n", key.c_str(), p99,
                  pmax, viol != nullptr ? viol->max : -1.0,
                  inj != nullptr ? inj->mean : 0.0);
      report.metric(key + ".precision_p99_us", p99);
      report.metric(key + ".precision_max_us", pmax);
      report.metric(key + ".accuracy_p99_us", ens.accuracy_hist.percentile(99));
      if (viol != nullptr) report.ensemble(key + ".violations", *viol);
      if (inj != nullptr) report.metric(key + ".injections_mean", inj->mean);

      if (lp == 0 && cp == 0) baseline_p99 = p99;
      if (lp == 20 && cp == 0) p99_l20_c0 = p99;
      if (lp == 0 && cp == 10) p99_l0_c10 = p99;
      if (p99 > worst_p99) worst_p99 = p99;

      // Paper-assumption rates: every replica must keep containment.
      if (lp <= 5 && cp <= 1) {
        gate(viol != nullptr && viol->max == 0.0,
             "containment violated at paper-assumption fault rates");
      }
      // A non-empty plan must actually inject somewhere in the ensemble
      // (zero injections across every replica means a wiring bug).  At 1%
      // rates a single replica may legitimately draw zero, so the
      // per-replica floor only applies to the heavier cells.
      if (lp + cp > 0) {
        gate(inj != nullptr && inj->max > 0.0,
             "fault plan armed but nothing injected");
      }
      if (lp >= 5 || cp >= 10) {
        gate(inj != nullptr && inj->min > 0.0,
             "heavy-rate cell had a replica with zero injections");
      }
    }
  }

  // Monotone, graceful degradation beyond the assumptions.  The 2% slack
  // absorbs log-histogram bucket quantization at near-equal values.
  gate(p99_l20_c0 >= baseline_p99 * 0.98,
       "20% loss did not degrade precision monotonically");
  gate(p99_l0_c10 >= baseline_p99 * 0.98,
       "10% corruption did not degrade precision monotonically");
  gate(worst_p99 < 100.0, "degradation not graceful (p99 >= 100 us)");
  report.metric("baseline_p99_us", baseline_p99);
  report.metric("worst_p99_us", worst_p99);

  // --- crash/rejoin cell ---------------------------------------------------
  {
    const SimTime crash = SimTime::epoch() + Duration::sec(8);
    const SimTime restart = SimTime::epoch() + Duration::sec(11);
    cluster::ClusterConfig cfg = base_cfg();
    cfg.faults.add(
        fault::FaultSpec::node_crash(4, crash, restart, Duration::us(300)));
    const Duration round = cfg.sync.round_period;

    std::vector<CrashWatch> slots(mcc.replicas);
    mc::Runner runner(cfg, mcc);
    runner.set_replica_hook([&slots, restart](mc::ReplicaContext& ctx) {
      cluster::Cluster& cl = ctx.cluster();
      CrashWatch& watch = slots[ctx.index()];
      // Containment watchdog over the survivors (the crashed node itself is
      // allowed to drift while down; the cluster-wide counter would blame
      // it), sampled densely from warmup on.
      ctx.retain<sim::PeriodicTask>(
          cl.engine(), SimTime::epoch() + Duration::sec(5), Duration::ms(50),
          [&cl, &watch, restart](std::uint64_t) {
            const SimTime t = cl.engine().now();
            const Duration truth = t - SimTime::epoch();
            Duration lo = Duration::max(), hi = -Duration::max();
            for (int i = 0; i < 4; ++i) {
              const auto iv = cl.sync(i).current_interval(t);
              if (truth < iv.lower() || truth > iv.upper()) {
                ++watch.nonfaulty_violations;
              }
              const Duration c = cl.node(i).true_clock(t);
              if (c < lo) lo = c;
              if (c > hi) hi = c;
            }
            // Rejoin: the restarted node's clock is back within 10 us of
            // the survivors' spread.
            if (t > restart && watch.reconverged == SimTime::never()) {
              const Duration c4 = cl.node(4).true_clock(t);
              if (c4 > lo - Duration::us(10) && c4 < hi + Duration::us(10)) {
                watch.reconverged = t;
              }
            }
          });
    });
    runner.set_extractor([&slots, restart, round](mc::ReplicaContext& ctx) {
      const CrashWatch& watch = slots[ctx.index()];
      ctx.metric("crash.nonfaulty_violations",
                 static_cast<double>(watch.nonfaulty_violations));
      const double rounds =
          watch.reconverged == SimTime::never()
              ? 1e9
              : (watch.reconverged - restart).to_sec_f() / round.to_sec_f();
      ctx.metric("crash.rejoin_rounds", rounds);
      ctx.metric("crash.restarted",
                 ctx.cluster().sync(4).running() ? 1.0 : 0.0);
    });
    const mc::EnsembleResult ens = runner.run();

    const mc::EnsembleStat* viol = ens.stat("crash.nonfaulty_violations");
    const mc::EnsembleStat* rejoin = ens.stat("crash.rejoin_rounds");
    const mc::EnsembleStat* up = ens.stat("crash.restarted");
    const mc::EnsembleStat* rec = ens.stat("fault_recoveries");
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "rejoin rounds [%.1f, %.1f], survivor violations max %.0f",
                  rejoin != nullptr ? rejoin->min : -1.0,
                  rejoin != nullptr ? rejoin->max : -1.0,
                  viol != nullptr ? viol->max : -1.0);
    bench::row("crash cell (node 4 down 8s..11s)", buf);
    gate(viol != nullptr && viol->max == 0.0,
         "survivor containment broke during crash/rejoin");
    gate(up != nullptr && up->min == 1.0, "crashed node did not restart");
    gate(rejoin != nullptr && rejoin->max <= 10.0,
         "crashed node did not re-converge within 10 rounds");
    gate(rec != nullptr && rec->min == 1.0 && rec->max == 1.0,
         "expected exactly one recovery per replica");
    if (rejoin != nullptr) {
      report.ensemble("crash.rejoin_rounds", *rejoin);
      report.ensemble("crash.nonfaulty_violations", *viol);
    }
  }

  bench::verdict(all_ok,
                 "fault matrix absorbed at assumed rates, degrades "
                 "monotonically beyond them, crash/rejoin bounded");
  report.pass(all_ok);
  report.write();
  return all_ok ? 0 : 1;
}
